//! Sampled complex-baseband signals in structure-of-arrays layout.
//!
//! [`Signal`] stores its real and imaginary components in two flat `f64`
//! vectors rather than one `Vec<Complex64>`. Whole-buffer kernels
//! ([`ofdm_dsp::kernels`]) operate on the split slices directly — plain
//! unit-stride `f64` loops the autovectorizer handles — while per-sample
//! callers use [`Signal::iter`] / [`Signal::get`] or the allocating
//! compatibility view [`Signal::samples`].

use crate::block::SimError;
use ofdm_dsp::{kernels, stats, Complex64};

/// A block of complex baseband samples tagged with its sample rate.
///
/// Signals are the only currency exchanged between simulator blocks; the
/// sample-rate tag lets the engine detect rate mismatches at connection
/// boundaries instead of silently producing wrong spectra.
///
/// # Layout
///
/// Samples live as split `re`/`im` component vectors (structure of
/// arrays). Hot-path blocks borrow them with [`Signal::parts`] /
/// [`Signal::parts_mut`] and hand them to batched kernels;
/// [`Signal::samples`] materializes an interleaved `Vec<Complex64>` copy
/// for callers that need the classic layout (instrument taps, tests,
/// FFT bridges) — it allocates, so keep it off per-chunk hot paths.
///
/// # Example
///
/// ```
/// use rfsim::Signal;
/// use ofdm_dsp::Complex64;
///
/// let s = Signal::new(vec![Complex64::ONE; 100], 20.0e6);
/// assert_eq!(s.len(), 100);
/// assert!((s.duration() - 5.0e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    re: Vec<f64>,
    im: Vec<f64>,
    sample_rate: f64,
}

fn check_rate(sample_rate: f64) -> Result<(), SimError> {
    if sample_rate > 0.0 && sample_rate.is_finite() {
        Ok(())
    } else {
        Err(SimError::InvalidSampleRate { rate: sample_rate })
    }
}

impl Signal {
    /// Creates a signal from interleaved samples and a sample rate in Hz.
    ///
    /// This is the panicking convenience over [`Signal::try_new`] for
    /// callers with statically-known-good rates (tests, literals).
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn new(samples: Vec<Complex64>, sample_rate: f64) -> Self {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        let mut re = Vec::with_capacity(samples.len());
        let mut im = Vec::with_capacity(samples.len());
        kernels::deinterleave(&samples, &mut re, &mut im);
        Signal {
            re,
            im,
            sample_rate,
        }
    }

    /// Creates a signal from interleaved samples, rejecting a sample rate
    /// that is not positive and finite.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidSampleRate`] if the rate is zero, negative, NaN
    /// or infinite.
    pub fn try_new(samples: Vec<Complex64>, sample_rate: f64) -> Result<Self, SimError> {
        check_rate(sample_rate)?;
        Ok(Signal::new(samples, sample_rate))
    }

    /// Creates a signal directly from split component vectors — the
    /// allocation-free constructor for producers that already work in
    /// structure-of-arrays layout.
    ///
    /// # Panics
    ///
    /// Panics if the component lengths differ or `sample_rate` is not
    /// positive and finite.
    pub fn from_parts(re: Vec<f64>, im: Vec<f64>, sample_rate: f64) -> Self {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        assert!(
            re.len() == im.len(),
            "component length mismatch: {} re vs {} im",
            re.len(),
            im.len()
        );
        Signal {
            re,
            im,
            sample_rate,
        }
    }

    /// Checked [`Signal::from_parts`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidSampleRate`] for a bad rate;
    /// [`SimError::BlockFailure`] if the component lengths differ.
    pub fn try_from_parts(re: Vec<f64>, im: Vec<f64>, sample_rate: f64) -> Result<Self, SimError> {
        check_rate(sample_rate)?;
        if re.len() != im.len() {
            return Err(SimError::BlockFailure {
                block: "signal".into(),
                message: format!(
                    "component length mismatch: {} re vs {} im",
                    re.len(),
                    im.len()
                ),
            });
        }
        Ok(Signal {
            re,
            im,
            sample_rate,
        })
    }

    /// An empty signal at the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn empty(sample_rate: f64) -> Self {
        Signal::new(Vec::new(), sample_rate)
    }

    /// Sample rate in Hz.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Returns `true` if the signal holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Signal duration in seconds.
    pub fn duration(&self) -> f64 {
        self.re.len() as f64 / self.sample_rate
    }

    /// Compatibility view: the samples as a freshly interleaved
    /// `Vec<Complex64>`.
    ///
    /// This **allocates and copies** on every call — it exists so
    /// per-sample consumers (instrument taps, analysis helpers, tests)
    /// survive the structure-of-arrays layout unchanged. Hot paths should
    /// use [`Signal::parts`] / [`Signal::iter`] instead.
    pub fn samples(&self) -> Vec<Complex64> {
        let mut out = Vec::new();
        kernels::interleave(&self.re, &self.im, &mut out);
        out
    }

    /// Consumes the signal, returning interleaved samples.
    pub fn into_samples(self) -> Vec<Complex64> {
        let mut out = Vec::new();
        kernels::interleave(&self.re, &self.im, &mut out);
        out
    }

    /// Borrows the real component.
    #[inline]
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// Borrows the imaginary component.
    #[inline]
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Borrows both components: `(re, im)`.
    #[inline]
    pub fn parts(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Mutably borrows both components (lengths and rate stay fixed).
    #[inline]
    pub fn parts_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// Mutable access to the component vectors for producers that write
    /// variable-length chunks in place (lengths may change but must stay
    /// equal; rate stays).
    #[inline]
    pub fn parts_vec_mut(&mut self) -> (&mut Vec<f64>, &mut Vec<f64>) {
        (&mut self.re, &mut self.im)
    }

    /// Iterates the samples as [`Complex64`] values without allocating.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Complex64> + '_ {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&r, &i)| Complex64::new(r, i))
    }

    /// The sample at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Complex64 {
        Complex64::new(self.re[i], self.im[i])
    }

    /// Overwrites the sample at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, z: Complex64) {
        self.re[i] = z.re;
        self.im[i] = z.im;
    }

    /// Appends one sample (rate unchanged).
    #[inline]
    pub fn push(&mut self, z: Complex64) {
        self.re.push(z.re);
        self.im.push(z.im);
    }

    /// Applies `f` to every sample in place — the per-sample escape hatch
    /// for transforms without a batched kernel.
    pub fn map_in_place(&mut self, mut f: impl FnMut(Complex64) -> Complex64) {
        for (r, i) in self.re.iter_mut().zip(self.im.iter_mut()) {
            let z = f(Complex64::new(*r, *i));
            *r = z.re;
            *i = z.im;
        }
    }

    /// Mean power `(1/N) Σ |x|²`.
    pub fn power(&self) -> f64 {
        stats::mean_power_split(&self.re, &self.im)
    }

    /// Mean power in dB (relative to unit power); `-inf` for silence.
    pub fn power_db(&self) -> f64 {
        let p = self.power();
        if p == 0.0 {
            f64::NEG_INFINITY
        } else {
            stats::ratio_to_db(p)
        }
    }

    /// Peak-to-average power ratio in dB.
    pub fn papr_db(&self) -> f64 {
        stats::papr_db_split(&self.re, &self.im)
    }

    /// Returns a copy scaled so that mean power equals `target` (linear).
    /// A silent signal is returned unchanged.
    pub fn to_power(&self, target: f64) -> Signal {
        let p = self.power();
        if p == 0.0 {
            return self.clone();
        }
        let k = (target / p).sqrt();
        let mut out = self.clone();
        kernels::scale_split(&mut out.re, &mut out.im, k);
        out
    }

    /// Clears the samples, keeping the allocations (rate unchanged).
    pub fn clear(&mut self) {
        self.re.clear();
        self.im.clear();
    }

    /// Current heap capacity in samples (diagnostic; lets tests assert a
    /// reused buffer stops allocating after warm-up).
    pub fn capacity(&self) -> usize {
        self.re.capacity().min(self.im.capacity())
    }

    /// Replaces the contents with a copy of `samples` at `sample_rate`,
    /// reusing the existing allocations.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn assign(&mut self, samples: &[Complex64], sample_rate: f64) {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        kernels::deinterleave(samples, &mut self.re, &mut self.im);
        self.sample_rate = sample_rate;
    }

    /// Replaces the contents with copies of split component slices at
    /// `sample_rate`, reusing the existing allocations.
    ///
    /// # Panics
    ///
    /// Panics if the component lengths differ or `sample_rate` is not
    /// positive and finite.
    pub fn assign_parts(&mut self, re: &[f64], im: &[f64], sample_rate: f64) {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        assert_eq!(re.len(), im.len(), "component length mismatch");
        self.re.clear();
        self.re.extend_from_slice(re);
        self.im.clear();
        self.im.extend_from_slice(im);
        self.sample_rate = sample_rate;
    }

    /// Replaces the contents with `len` samples of `other` starting at
    /// `start`, adopting its rate — the streaming scheduler's slice move,
    /// done without interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds `other.len()`.
    pub fn assign_range(&mut self, other: &Signal, start: usize, len: usize) {
        self.re.clear();
        self.re.extend_from_slice(&other.re[start..start + len]);
        self.im.clear();
        self.im.extend_from_slice(&other.im[start..start + len]);
        self.sample_rate = other.sample_rate;
    }

    /// Copies another signal's contents into this one, reusing the
    /// existing allocations (the streaming scheduler's per-edge move).
    pub fn copy_from(&mut self, other: &Signal) {
        self.re.clone_from(&other.re);
        self.im.clone_from(&other.im);
        self.sample_rate = other.sample_rate;
    }

    /// Re-tags the sample rate without touching the samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn set_sample_rate(&mut self, sample_rate: f64) {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        self.sample_rate = sample_rate;
    }

    /// Appends raw interleaved samples (rate unchanged).
    pub fn append_samples(&mut self, samples: &[Complex64]) {
        self.re.reserve(samples.len());
        self.im.reserve(samples.len());
        for z in samples {
            self.re.push(z.re);
            self.im.push(z.im);
        }
    }

    /// Appends split component slices (rate unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the component lengths differ.
    pub fn extend_from_parts(&mut self, re: &[f64], im: &[f64]) {
        assert_eq!(re.len(), im.len(), "component length mismatch");
        self.re.extend_from_slice(re);
        self.im.extend_from_slice(im);
    }

    /// Index of the first sample whose real or imaginary part is NaN or
    /// infinite, if any — the scan the scheduler's non-finite guard
    /// ([`crate::Graph::guard_non_finite`]) runs on block outputs.
    pub fn first_non_finite(&self) -> Option<usize> {
        self.re
            .iter()
            .zip(&self.im)
            .position(|(r, i)| !r.is_finite() || !i.is_finite())
    }

    /// Appends another signal's samples.
    ///
    /// # Panics
    ///
    /// Panics if sample rates differ.
    pub fn extend_from(&mut self, other: &Signal) {
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9 * self.sample_rate,
            "cannot concatenate signals with different sample rates"
        );
        self.re.extend_from_slice(&other.re);
        self.im.extend_from_slice(&other.im);
    }
}

/// An empty signal at 1 Hz — the placeholder the streaming scheduler uses
/// for not-yet-filled edge buffers.
impl Default for Signal {
    fn default() -> Self {
        Signal::empty(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Signal::new(vec![Complex64::ONE; 10], 1000.0);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.sample_rate(), 1000.0);
        assert!((s.duration() - 0.01).abs() < 1e-15);
        assert_eq!(s.samples().len(), 10);
        assert_eq!(s.re().len(), 10);
        assert_eq!(s.im().len(), 10);
    }

    #[test]
    fn empty_signal() {
        let s = Signal::empty(8000.0);
        assert!(s.is_empty());
        assert_eq!(s.power(), 0.0);
        assert_eq!(s.power_db(), f64::NEG_INFINITY);
    }

    #[test]
    fn try_new_rejects_bad_rates() {
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match Signal::try_new(vec![], rate) {
                Err(SimError::InvalidSampleRate { rate: r }) => {
                    assert!(r.is_nan() || r == rate);
                }
                other => panic!("expected InvalidSampleRate for {rate}, got {other:?}"),
            }
        }
        assert!(Signal::try_new(vec![Complex64::ONE], 1.0e6).is_ok());
    }

    #[test]
    fn parts_roundtrip() {
        let z = vec![Complex64::new(1.0, -2.0), Complex64::new(3.5, 0.25)];
        let s = Signal::new(z.clone(), 10.0);
        assert_eq!(s.re(), &[1.0, 3.5]);
        assert_eq!(s.im(), &[-2.0, 0.25]);
        assert_eq!(s.samples(), z);
        assert_eq!(s.iter().collect::<Vec<_>>(), z);
        assert_eq!(s.get(1), z[1]);
        let back = Signal::from_parts(s.re().to_vec(), s.im().to_vec(), 10.0);
        assert_eq!(back, s);
        assert_eq!(back.clone().into_samples(), z);
    }

    #[test]
    fn try_from_parts_checks_lengths() {
        assert!(matches!(
            Signal::try_from_parts(vec![1.0], vec![], 1.0),
            Err(SimError::BlockFailure { .. })
        ));
        assert!(matches!(
            Signal::try_from_parts(vec![1.0], vec![0.0], 0.0),
            Err(SimError::InvalidSampleRate { .. })
        ));
    }

    #[test]
    fn power_and_scaling() {
        let s = Signal::new(vec![Complex64::new(2.0, 0.0); 4], 1.0);
        assert!((s.power() - 4.0).abs() < 1e-12);
        let scaled = s.to_power(1.0);
        assert!((scaled.power() - 1.0).abs() < 1e-12);
        assert!((scaled.samples()[0].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_power_of_silence_is_noop() {
        let s = Signal::new(vec![Complex64::ZERO; 4], 1.0);
        assert_eq!(s.to_power(1.0), s);
    }

    #[test]
    fn mutation_through_set_and_map() {
        let mut s = Signal::new(vec![Complex64::ZERO; 2], 1.0);
        s.set(0, Complex64::ONE);
        assert_eq!(s.get(0), Complex64::ONE);
        s.map_in_place(|z| z.scale(3.0));
        assert_eq!(s.get(0), Complex64::new(3.0, 0.0));
        let v = s.into_samples();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn reuse_helpers_keep_allocation() {
        let mut s = Signal::new(vec![Complex64::ONE; 64], 1.0e6);
        let cap = s.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap);
        s.assign(&[Complex64::ZERO; 32], 2.0e6);
        assert_eq!(s.len(), 32);
        assert_eq!(s.sample_rate(), 2.0e6);
        assert_eq!(s.capacity(), cap);
        let other = Signal::new(vec![Complex64::ONE; 10], 3.0e6);
        s.copy_from(&other);
        assert_eq!(s.len(), 10);
        assert_eq!(s.sample_rate(), 3.0e6);
        assert_eq!(s.capacity(), cap);
        s.assign_range(&other, 2, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.sample_rate(), 3.0e6);
        assert_eq!(s.capacity(), cap);
        s.append_samples(&[Complex64::ZERO; 2]);
        assert_eq!(s.len(), 7);
        s.extend_from_parts(&[1.0], &[0.5]);
        assert_eq!(s.len(), 8);
        assert_eq!(s.get(7), Complex64::new(1.0, 0.5));
        s.set_sample_rate(5.0);
        assert_eq!(s.sample_rate(), 5.0);
        s.push(Complex64::ONE);
        assert_eq!(s.len(), 9);
        let (re, im) = s.parts_vec_mut();
        re.push(0.0);
        im.push(0.0);
        assert_eq!(s.len(), 10);
        assert_eq!(Signal::default().sample_rate(), 1.0);
    }

    #[test]
    fn assign_parts_replaces_contents() {
        let mut s = Signal::default();
        s.assign_parts(&[1.0, 2.0], &[3.0, 4.0], 48.0e3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample_rate(), 48.0e3);
        assert_eq!(s.get(1), Complex64::new(2.0, 4.0));
    }

    #[test]
    fn first_non_finite_scans_both_parts() {
        let mut s = Signal::new(vec![Complex64::ONE; 4], 1.0);
        assert_eq!(s.first_non_finite(), None);
        s.set(2, Complex64::new(0.0, f64::NAN));
        assert_eq!(s.first_non_finite(), Some(2));
        s.set(1, Complex64::new(f64::INFINITY, 0.0));
        assert_eq!(s.first_non_finite(), Some(1));
        assert_eq!(Signal::empty(1.0).first_non_finite(), None);
    }

    #[test]
    fn concatenation() {
        let mut a = Signal::new(vec![Complex64::ONE; 3], 100.0);
        let b = Signal::new(vec![Complex64::ZERO; 2], 100.0);
        a.extend_from(&b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    #[should_panic(expected = "different sample rates")]
    fn concatenation_rate_mismatch_panics() {
        let mut a = Signal::new(vec![], 100.0);
        let b = Signal::new(vec![], 200.0);
        a.extend_from(&b);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn bad_rate_panics() {
        let _ = Signal::new(vec![], -1.0);
    }

    #[test]
    #[should_panic(expected = "component length mismatch")]
    fn from_parts_length_mismatch_panics() {
        let _ = Signal::from_parts(vec![1.0], vec![], 1.0);
    }
}

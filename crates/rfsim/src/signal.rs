//! Sampled complex-baseband signals.

use ofdm_dsp::stats;
use ofdm_dsp::Complex64;

/// A block of complex baseband samples tagged with its sample rate.
///
/// Signals are the only currency exchanged between simulator blocks; the
/// sample-rate tag lets the engine detect rate mismatches at connection
/// boundaries instead of silently producing wrong spectra.
///
/// # Example
///
/// ```
/// use rfsim::Signal;
/// use ofdm_dsp::Complex64;
///
/// let s = Signal::new(vec![Complex64::ONE; 100], 20.0e6);
/// assert_eq!(s.len(), 100);
/// assert!((s.duration() - 5.0e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    samples: Vec<Complex64>,
    sample_rate: f64,
}

impl Signal {
    /// Creates a signal from samples and a sample rate in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn new(samples: Vec<Complex64>, sample_rate: f64) -> Self {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        Signal {
            samples,
            sample_rate,
        }
    }

    /// An empty signal at the given rate.
    pub fn empty(sample_rate: f64) -> Self {
        Signal::new(Vec::new(), sample_rate)
    }

    /// Sample rate in Hz.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the signal holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Signal duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Borrows the samples.
    #[inline]
    pub fn samples(&self) -> &[Complex64] {
        &self.samples
    }

    /// Mutably borrows the samples (rate stays fixed).
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [Complex64] {
        &mut self.samples
    }

    /// Consumes the signal, returning its samples.
    pub fn into_samples(self) -> Vec<Complex64> {
        self.samples
    }

    /// Mean power `(1/N) Σ |x|²`.
    pub fn power(&self) -> f64 {
        stats::mean_power(&self.samples)
    }

    /// Mean power in dB (relative to unit power); `-inf` for silence.
    pub fn power_db(&self) -> f64 {
        let p = self.power();
        if p == 0.0 {
            f64::NEG_INFINITY
        } else {
            stats::ratio_to_db(p)
        }
    }

    /// Peak-to-average power ratio in dB.
    pub fn papr_db(&self) -> f64 {
        stats::papr_db(&self.samples)
    }

    /// Returns a copy scaled so that mean power equals `target` (linear).
    /// A silent signal is returned unchanged.
    pub fn to_power(&self, target: f64) -> Signal {
        let p = self.power();
        if p == 0.0 {
            return self.clone();
        }
        let k = (target / p).sqrt();
        Signal::new(
            self.samples.iter().map(|z| z.scale(k)).collect(),
            self.sample_rate,
        )
    }

    /// Clears the samples, keeping the allocation (rate unchanged).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Current heap capacity in samples (diagnostic; lets tests assert a
    /// reused buffer stops allocating after warm-up).
    pub fn capacity(&self) -> usize {
        self.samples.capacity()
    }

    /// Replaces the contents with a copy of `samples` at `sample_rate`,
    /// reusing the existing allocation.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn assign(&mut self, samples: &[Complex64], sample_rate: f64) {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        self.samples.clear();
        self.samples.extend_from_slice(samples);
        self.sample_rate = sample_rate;
    }

    /// Copies another signal's contents into this one, reusing the
    /// existing allocation (the streaming scheduler's per-edge move).
    pub fn copy_from(&mut self, other: &Signal) {
        self.samples.clone_from(&other.samples);
        self.sample_rate = other.sample_rate;
    }

    /// Re-tags the sample rate without touching the samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not positive and finite.
    pub fn set_sample_rate(&mut self, sample_rate: f64) {
        assert!(
            sample_rate > 0.0 && sample_rate.is_finite(),
            "sample rate must be positive and finite"
        );
        self.sample_rate = sample_rate;
    }

    /// Appends raw samples (rate unchanged).
    pub fn append_samples(&mut self, samples: &[Complex64]) {
        self.samples.extend_from_slice(samples);
    }

    /// Mutable access to the sample vector for producers that write
    /// variable-length chunks in place (length may change; rate stays).
    #[inline]
    pub fn samples_vec_mut(&mut self) -> &mut Vec<Complex64> {
        &mut self.samples
    }

    /// Index of the first sample whose real or imaginary part is NaN or
    /// infinite, if any — the scan the scheduler's non-finite guard
    /// ([`crate::Graph::guard_non_finite`]) runs on block outputs.
    pub fn first_non_finite(&self) -> Option<usize> {
        self.samples
            .iter()
            .position(|z| !z.re.is_finite() || !z.im.is_finite())
    }

    /// Appends another signal's samples.
    ///
    /// # Panics
    ///
    /// Panics if sample rates differ.
    pub fn extend_from(&mut self, other: &Signal) {
        assert!(
            (self.sample_rate - other.sample_rate).abs() < 1e-9 * self.sample_rate,
            "cannot concatenate signals with different sample rates"
        );
        self.samples.extend_from_slice(&other.samples);
    }
}

impl AsRef<[Complex64]> for Signal {
    fn as_ref(&self) -> &[Complex64] {
        &self.samples
    }
}

/// An empty signal at 1 Hz — the placeholder the streaming scheduler uses
/// for not-yet-filled edge buffers.
impl Default for Signal {
    fn default() -> Self {
        Signal::empty(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Signal::new(vec![Complex64::ONE; 10], 1000.0);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.sample_rate(), 1000.0);
        assert!((s.duration() - 0.01).abs() < 1e-15);
        assert_eq!(s.samples().len(), 10);
        assert_eq!(s.as_ref().len(), 10);
    }

    #[test]
    fn empty_signal() {
        let s = Signal::empty(8000.0);
        assert!(s.is_empty());
        assert_eq!(s.power(), 0.0);
        assert_eq!(s.power_db(), f64::NEG_INFINITY);
    }

    #[test]
    fn power_and_scaling() {
        let s = Signal::new(vec![Complex64::new(2.0, 0.0); 4], 1.0);
        assert!((s.power() - 4.0).abs() < 1e-12);
        let scaled = s.to_power(1.0);
        assert!((scaled.power() - 1.0).abs() < 1e-12);
        assert!((scaled.samples()[0].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_power_of_silence_is_noop() {
        let s = Signal::new(vec![Complex64::ZERO; 4], 1.0);
        assert_eq!(s.to_power(1.0), s);
    }

    #[test]
    fn mutation_through_samples_mut() {
        let mut s = Signal::new(vec![Complex64::ZERO; 2], 1.0);
        s.samples_mut()[0] = Complex64::ONE;
        assert_eq!(s.samples()[0], Complex64::ONE);
        let v = s.into_samples();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn reuse_helpers_keep_allocation() {
        let mut s = Signal::new(vec![Complex64::ONE; 64], 1.0e6);
        let cap = s.capacity();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), cap);
        s.assign(&[Complex64::ZERO; 32], 2.0e6);
        assert_eq!(s.len(), 32);
        assert_eq!(s.sample_rate(), 2.0e6);
        assert_eq!(s.capacity(), cap);
        let other = Signal::new(vec![Complex64::ONE; 10], 3.0e6);
        s.copy_from(&other);
        assert_eq!(s.len(), 10);
        assert_eq!(s.sample_rate(), 3.0e6);
        assert_eq!(s.capacity(), cap);
        s.append_samples(&[Complex64::ZERO; 2]);
        assert_eq!(s.len(), 12);
        s.set_sample_rate(5.0);
        assert_eq!(s.sample_rate(), 5.0);
        s.samples_vec_mut().push(Complex64::ONE);
        assert_eq!(s.len(), 13);
        assert_eq!(Signal::default().sample_rate(), 1.0);
    }

    #[test]
    fn first_non_finite_scans_both_parts() {
        let mut s = Signal::new(vec![Complex64::ONE; 4], 1.0);
        assert_eq!(s.first_non_finite(), None);
        s.samples_mut()[2] = Complex64::new(0.0, f64::NAN);
        assert_eq!(s.first_non_finite(), Some(2));
        s.samples_mut()[1] = Complex64::new(f64::INFINITY, 0.0);
        assert_eq!(s.first_non_finite(), Some(1));
        assert_eq!(Signal::empty(1.0).first_non_finite(), None);
    }

    #[test]
    fn concatenation() {
        let mut a = Signal::new(vec![Complex64::ONE; 3], 100.0);
        let b = Signal::new(vec![Complex64::ZERO; 2], 100.0);
        a.extend_from(&b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    #[should_panic(expected = "different sample rates")]
    fn concatenation_rate_mismatch_panics() {
        let mut a = Signal::new(vec![], 100.0);
        let b = Signal::new(vec![], 200.0);
        a.extend_from(&b);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn bad_rate_panics() {
        let _ = Signal::new(vec![], -1.0);
    }
}

//! A block-diagram RF system simulator.
//!
//! This crate is the reproduction's stand-in for the APLAC® System Simulator
//! used by the paper: a directed signal-flow graph of analog/RF behavioral
//! blocks — oscillators with phase noise, mixers, power-amplifier models,
//! filters, channels — plus measurement instruments (spectrum analyzer, power
//! meter, ACPR, spectral-mask checker).
//!
//! Digital IP such as the OFDM Mother Model plugs in through the [`Block`]
//! trait exactly like the paper wraps its model into an "APLAC Submodel":
//! from the simulator's point of view the transmitter is just another signal
//! source block.
//!
//! Signals are complex baseband sample blocks ([`signal::Signal`]) carrying
//! their sample rate; the engine checks rate compatibility at every
//! connection.
//!
//! # Example
//!
//! ```
//! use rfsim::prelude::*;
//!
//! # fn main() -> Result<(), rfsim::SimError> {
//! let mut g = Graph::new();
//! let src = g.add(ToneSource::new(1.0e6, 20.0e6, 4096));
//! let amp = g.add(RappPa::new(1.0, 2.0).with_gain_db(10.0));
//! g.connect(src, amp, 0)?;
//! g.run()?;
//! let out = g.output(amp).expect("amplifier ran");
//! assert_eq!(out.sample_rate(), 20.0e6);
//! # Ok(())
//! # }
//! ```

pub mod analog;
pub mod block;
pub mod channel;
pub mod exec;
pub mod fault;
pub mod filter;
pub mod graph;
pub mod instruments;
pub mod pa;
pub mod rate;
pub mod scenario;
pub mod signal;
pub mod source;
pub mod supervise;
pub mod telemetry;

pub use block::{Block, SimError};
pub use channel::{CfoChannel, FadingChannel, FadingTap, PhaseNoiseChannel};
pub use exec::{ExecMode, ExecPlan, Executor};
pub use fault::{
    ClockDriftJitter, FaultInjector, FaultPlan, FaultStats, NanInjector, SampleDropper,
    StalledSource,
};
pub use graph::{BlockId, Graph};
// The deprecated free-function runners stay re-exported so downstream
// callers get the deprecation note instead of a hard break.
#[allow(deprecated)]
pub use scenario::{
    run_scenarios, run_scenarios_checkpointed, run_scenarios_resilient, run_scenarios_supervised,
    scenario_seed, RetryPolicy, ScenarioCtx, ScenarioOutcome, Scenarios, SweepPlan,
};
pub use signal::Signal;
pub use supervise::{
    BlockRole, BreakerPolicy, BreakerState, CancelToken, CheckpointEntry, CheckpointPayload,
    Deadline, Health, Lease, LeaseReaper, SupervisionReport, SweepCheckpoint, SweepSupervisor,
};
pub use telemetry::{BlockStats, FaultReport, Percentiles, RunMode, RunReport, SweepReport};

/// Convenient glob-import surface for simulator users.
pub mod prelude {
    pub use crate::analog::{Combiner, Dac, IqImbalance, LocalOscillator, Mixer};
    pub use crate::block::{Block, SimError};
    pub use crate::channel::{
        AwgnChannel, CfoChannel, DslLineChannel, FadingChannel, FadingTap, ImpulsiveNoiseChannel,
        MultipathChannel, PhaseNoiseChannel, RayleighChannel,
    };
    pub use crate::exec::{ExecMode, ExecPlan, Executor};
    pub use crate::fault::{
        ClockDriftJitter, FaultInjector, FaultPlan, FaultStats, NanInjector, SampleDropper,
        StalledSource,
    };
    pub use crate::filter::{ButterworthLowpass, FirBlock};
    pub use crate::graph::{BlockId, Graph};
    pub use crate::instruments::{
        AcprMeter, CcdfProbe, MaskChecker, MaskPoint, PowerMeter, SpectrumAnalyzer,
    };
    pub use crate::pa::{RappPa, SalehPa, SoftClipPa};
    pub use crate::rate::{Downsampler, GainBlock, Upsampler};
    #[allow(deprecated)]
    pub use crate::scenario::{
        run_scenarios, run_scenarios_checkpointed, run_scenarios_instrumented,
        run_scenarios_resilient, run_scenarios_supervised, scenario_seed, RetryPolicy, ScenarioCtx,
        ScenarioOutcome, Scenarios, SweepPlan,
    };
    pub use crate::signal::Signal;
    pub use crate::source::{SamplePlayback, ToneSource};
    pub use crate::supervise::{
        BlockRole, BreakerPolicy, BreakerState, CancelToken, CheckpointEntry, CheckpointPayload,
        Deadline, Health, Lease, LeaseReaper, SupervisionReport, SweepCheckpoint, SweepSupervisor,
    };
    pub use crate::telemetry::{
        BlockStats, FaultReport, Percentiles, RunMode, RunReport, SweepReport,
    };
}

//! Run instrumentation: per-block timing, sample counters and per-edge
//! buffer high-water marks for graph passes, plus sweep-level aggregates
//! for the parallel scenario runner.
//!
//! The paper's C3 claim — the behavioral OFDM source has negligible cost
//! inside a full TX chain — is only honest if it can be *measured per
//! block*. [`crate::Graph::run_instrumented`] and
//! [`crate::Graph::run_streaming_instrumented`] thread a recorder through
//! the ordinary schedulers and return a [`RunReport`]; the uninstrumented
//! entry points keep their signatures and pay no recording cost.
//!
//! Reports render as a markdown table ([`RunReport::summary`]) or as a
//! machine-readable JSON document ([`RunReport::to_json`]) for the
//! `BENCH_*.json` perf trajectory.

use crate::supervise::{Health, SupervisionReport};
use serde::json::Value;
use std::time::Instant;

/// Accumulated measurements for one block over one instrumented pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockStats {
    /// The block's [`crate::Block::name`].
    pub name: String,
    /// How many times the block's process/chunk hook ran.
    pub invocations: u64,
    /// Total wall time spent inside the block, in nanoseconds.
    pub nanos: u64,
    /// Total samples consumed across all input ports.
    pub samples_in: u64,
    /// Total samples produced.
    pub samples_out: u64,
    /// Peak number of samples held in this block's output edge buffer at
    /// any point of the pass (for batch runs: the pass output length).
    pub buffer_high_water: usize,
    /// How many invocations the circuit breaker replaced with a
    /// pass-through bypass ([`crate::Graph::set_breaker_policy`]).
    pub bypassed: u64,
}

impl BlockStats {
    /// Mean nanoseconds per invocation (0 when the block never ran).
    pub fn nanos_per_invocation(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.nanos as f64 / self.invocations as f64
        }
    }

    /// Output throughput in megasamples per second (0 for zero time).
    pub fn throughput_msps(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.samples_out as f64 * 1e3 / self.nanos as f64
        }
    }
}

/// Which scheduler produced a [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// [`crate::Graph::run_instrumented`] — whole-pass evaluation.
    Batch,
    /// [`crate::Graph::run_streaming_instrumented`] with this chunk length.
    Streaming {
        /// The chunk length the pass used.
        chunk_len: usize,
    },
}

/// The result of one instrumented graph pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scheduler that produced the report.
    pub mode: RunMode,
    /// End-to-end wall time of the pass in nanoseconds (includes scheduler
    /// overhead, not just block time).
    pub total_nanos: u64,
    /// Scheduler rounds: 1 for batch, the number of chunk rounds for
    /// streaming.
    pub rounds: u64,
    /// Supervision verdict of the pass: `Degraded` when any breaker
    /// bypassed a block, `Failed` when the pass errored.
    pub health: Health,
    /// Circuit-breaker trips (Closed → Open transitions) during the pass.
    pub breaker_trips: u64,
    /// Block invocations replaced by pass-through bypass during the pass.
    pub bypassed_invocations: u64,
    /// Per-block measurements, in block insertion order.
    pub blocks: Vec<BlockStats>,
}

impl RunReport {
    /// Looks a block's stats up by name (first match).
    pub fn block(&self, name: &str) -> Option<&BlockStats> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Samples emitted by source blocks (`samples_in == 0`), i.e. the
    /// pass length the graph processed.
    pub fn source_samples(&self) -> u64 {
        self.blocks
            .iter()
            .filter(|b| b.samples_in == 0)
            .map(|b| b.samples_out)
            .sum()
    }

    /// End-to-end throughput in megasamples per second: source samples
    /// over total wall time.
    pub fn throughput_msps(&self) -> f64 {
        if self.total_nanos == 0 {
            0.0
        } else {
            self.source_samples() as f64 * 1e3 / self.total_nanos as f64
        }
    }

    /// Wall time spent inside blocks, in nanoseconds (the remainder of
    /// [`RunReport::total_nanos`] is scheduler overhead).
    pub fn block_nanos(&self) -> u64 {
        self.blocks.iter().map(|b| b.nanos).sum()
    }

    /// Renders the report as a markdown table, heaviest block first.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut order: Vec<&BlockStats> = self.blocks.iter().collect();
        order.sort_by_key(|b| std::cmp::Reverse(b.nanos));
        let mut out = String::new();
        let mode = match self.mode {
            RunMode::Batch => "batch".to_owned(),
            RunMode::Streaming { chunk_len } => format!("streaming(chunk={chunk_len})"),
        };
        let _ = writeln!(
            out,
            "run: {mode}, {} rounds, {:.3} ms total, {:.2} Msamples/s, health {}",
            self.rounds,
            self.total_nanos as f64 / 1e6,
            self.throughput_msps(),
            self.health,
        );
        if self.breaker_trips > 0 || self.bypassed_invocations > 0 {
            let _ = writeln!(
                out,
                "supervision: {} breaker trip(s), {} invocation(s) bypassed",
                self.breaker_trips, self.bypassed_invocations,
            );
        }
        let _ = writeln!(
            out,
            "| block | calls | time (µs) | share | in | out | buf HWM | bypassed |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
        let block_total = self.block_nanos().max(1);
        for b in order {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1} | {:.0}% | {} | {} | {} | {} |",
                b.name,
                b.invocations,
                b.nanos as f64 / 1e3,
                b.nanos as f64 * 100.0 / block_total as f64,
                b.samples_in,
                b.samples_out,
                b.buffer_high_water,
                b.bypassed,
            );
        }
        out
    }

    /// The report as a JSON document (see the serde shim's `json` module).
    pub fn to_json_value(&self) -> Value {
        let mode = match self.mode {
            RunMode::Batch => Value::from("batch"),
            RunMode::Streaming { chunk_len } => Value::Object(vec![
                ("streaming".into(), Value::from(true)),
                ("chunk_len".into(), Value::from(chunk_len)),
            ]),
        };
        Value::Object(vec![
            ("mode".into(), mode),
            ("total_ns".into(), Value::from(self.total_nanos)),
            ("rounds".into(), Value::from(self.rounds)),
            ("health".into(), Value::from(self.health.as_str())),
            ("breaker_trips".into(), Value::from(self.breaker_trips)),
            (
                "bypassed_invocations".into(),
                Value::from(self.bypassed_invocations),
            ),
            (
                "throughput_msps".into(),
                Value::from(self.throughput_msps()),
            ),
            (
                "blocks".into(),
                Value::Array(
                    self.blocks
                        .iter()
                        .map(|b| {
                            Value::Object(vec![
                                ("name".into(), Value::from(b.name.as_str())),
                                ("invocations".into(), Value::from(b.invocations)),
                                ("ns".into(), Value::from(b.nanos)),
                                ("samples_in".into(), Value::from(b.samples_in)),
                                ("samples_out".into(), Value::from(b.samples_out)),
                                ("buffer_high_water".into(), Value::from(b.buffer_high_water)),
                                ("bypassed".into(), Value::from(b.bypassed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The report serialized as a JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// The in-flight recorder the instrumented schedulers write into.
///
/// One slot per graph node; built fresh at the start of every instrumented
/// pass, so back-to-back instrumented runs never accumulate into each
/// other (see the `Graph::reset` regression tests).
#[derive(Debug)]
pub(crate) struct Recorder {
    started: Instant,
    pub(crate) rounds: u64,
    slots: Vec<Slot>,
}

#[derive(Debug, Clone, Default)]
struct Slot {
    invocations: u64,
    nanos: u64,
    samples_in: u64,
    samples_out: u64,
    buffer_high_water: usize,
    bypassed: u64,
}

impl Recorder {
    /// A recorder for a graph of `n` nodes; starts the wall clock.
    pub(crate) fn new(n: usize) -> Self {
        Recorder {
            started: Instant::now(),
            rounds: 0,
            slots: vec![Slot::default(); n],
        }
    }

    /// Starts one timed block invocation; pass the result to
    /// [`Recorder::record`].
    pub(crate) fn begin(&self) -> Instant {
        Instant::now()
    }

    /// Records one block invocation: elapsed time since `begin` plus
    /// sample counts.
    pub(crate) fn record(
        &mut self,
        node: usize,
        begin: Instant,
        samples_in: usize,
        samples_out: usize,
    ) {
        let slot = &mut self.slots[node];
        slot.invocations += 1;
        slot.nanos += begin.elapsed().as_nanos() as u64;
        slot.samples_in += samples_in as u64;
        slot.samples_out += samples_out as u64;
    }

    /// Notes the current fill level of a node's output edge buffer.
    pub(crate) fn note_buffer(&mut self, node: usize, held: usize) {
        let slot = &mut self.slots[node];
        slot.buffer_high_water = slot.buffer_high_water.max(held);
    }

    /// Notes one breaker-bypassed invocation of a node.
    pub(crate) fn note_bypass(&mut self, node: usize) {
        self.slots[node].bypassed += 1;
    }

    /// Finalizes into a [`RunReport`], attaching block names. Supervision
    /// fields start at their healthy defaults; the graph stamps its own
    /// counters afterwards.
    pub(crate) fn finish(self, mode: RunMode, names: impl Iterator<Item = String>) -> RunReport {
        let total_nanos = self.started.elapsed().as_nanos() as u64;
        RunReport {
            mode,
            total_nanos,
            rounds: self.rounds.max(1),
            health: Health::Healthy,
            breaker_trips: 0,
            bypassed_invocations: 0,
            blocks: names
                .zip(self.slots)
                .map(|(name, s)| BlockStats {
                    name,
                    invocations: s.invocations,
                    nanos: s.nanos,
                    samples_in: s.samples_in,
                    samples_out: s.samples_out,
                    buffer_high_water: s.buffer_high_water,
                    bypassed: s.bypassed,
                })
                .collect(),
        }
    }
}

/// Clamps a ratio to a finite value for JSON emission: NaN becomes 0,
/// infinities saturate to `±f64::MAX`. The `BENCH_*.json` trajectory is
/// diffed across commits by tooling that treats non-finite numerics as
/// corruption, so reports must never emit them.
pub(crate) fn finite_or_zero(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(f64::MIN, f64::MAX)
    }
}

/// Order statistics over a sample set: min/max/mean plus the p50, p95
/// and p99 percentiles.
///
/// Tails are where a service lives or dies — a mean hides the one
/// scenario in a hundred that blew its budget. Sweep runners attach
/// these over per-scenario durations ([`SweepReport::duration_percentiles`]),
/// and the experiment lab reuses the same aggregation over per-repeat
/// metric values, so "p95 BER over 20 realizations" and "p99 scenario
/// latency" are the same code path.
///
/// Percentiles use linear interpolation between order statistics
/// (rank `q·(n−1)`), which is deterministic: the same samples always
/// produce bit-identical statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Number of samples aggregated.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Aggregates a sample set; `None` when it is empty.
    ///
    /// Non-finite samples are not filtered — they propagate into the
    /// statistics (and serialize as `null`), so a corrupted input is
    /// visible downstream instead of silently dropped.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Percentiles {
            count: sorted.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean,
            p50: quantile(&sorted, 0.50),
            p95: quantile(&sorted, 0.95),
            p99: quantile(&sorted, 0.99),
        })
    }

    /// Aggregates integer nanosecond durations.
    pub fn from_nanos(nanos: &[u64]) -> Option<Self> {
        let samples: Vec<f64> = nanos.iter().map(|&n| n as f64).collect();
        Self::from_samples(&samples)
    }

    /// Looks a statistic up by name (`"min"`, `"max"`, `"mean"`,
    /// `"p50"`, `"p95"`, `"p99"`); `None` for anything else.
    pub fn stat(&self, name: &str) -> Option<f64> {
        match name {
            "min" => Some(self.min),
            "max" => Some(self.max),
            "mean" => Some(self.mean),
            "p50" => Some(self.p50),
            "p95" => Some(self.p95),
            "p99" => Some(self.p99),
            _ => None,
        }
    }

    /// The statistics as a JSON object (insertion-ordered, so emission
    /// is deterministic).
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::from(self.count)),
            ("min".into(), Value::from(self.min)),
            ("max".into(), Value::from(self.max)),
            ("mean".into(), Value::from(self.mean)),
            ("p50".into(), Value::from(self.p50)),
            ("p95".into(), Value::from(self.p95)),
            ("p99".into(), Value::from(self.p99)),
        ])
    }
}

/// Quantile `q` of an ascending-sorted slice by linear interpolation at
/// rank `q·(n−1)`.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

/// Outcome counts of a fault-tolerant scenario sweep
/// ([`crate::scenario::SweepPlan::run`]): how the sweep degraded
/// instead of whether it survived — it always survives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Scenarios that succeeded on their first attempt.
    pub succeeded: usize,
    /// Scenarios that succeeded only after one or more retries.
    pub retried: usize,
    /// Scenarios that exhausted all attempts and produced no result.
    pub faulted: usize,
    /// Worker panics caught (across all attempts of all scenarios).
    pub panics_caught: usize,
    /// Typed scenario errors caught (across all attempts).
    pub errors_caught: usize,
}

impl FaultReport {
    /// Total scenarios the sweep attempted.
    pub fn scenarios(&self) -> usize {
        self.succeeded + self.retried + self.faulted
    }

    /// Scenarios that produced a result (first try or after retry).
    pub fn completed(&self) -> usize {
        self.succeeded + self.retried
    }

    /// Fraction of scenarios that produced a result, in `[0, 1]`.
    /// An empty sweep counts as fully survived.
    pub fn survival_rate(&self) -> f64 {
        let total = self.scenarios();
        if total == 0 {
            1.0
        } else {
            self.completed() as f64 / total as f64
        }
    }

    /// One-line human-readable digest.
    pub fn summary(&self) -> String {
        format!(
            "{} scenarios: {} clean, {} retried, {} faulted ({:.0}% survival; caught {} panics, {} errors)",
            self.scenarios(),
            self.succeeded,
            self.retried,
            self.faulted,
            self.survival_rate() * 100.0,
            self.panics_caught,
            self.errors_caught,
        )
    }

    /// The fault counts as a JSON document.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("succeeded".into(), Value::from(self.succeeded)),
            ("retried".into(), Value::from(self.retried)),
            ("faulted".into(), Value::from(self.faulted)),
            ("panics_caught".into(), Value::from(self.panics_caught)),
            ("errors_caught".into(), Value::from(self.errors_caught)),
            (
                "survival_rate".into(),
                Value::from(finite_or_zero(self.survival_rate())),
            ),
        ])
    }
}

/// Aggregates for one scenario sweep
/// ([`crate::scenario::SweepPlan::run_fail_fast`] with telemetry enabled,
/// or any fault-tolerant run).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Wall time of the whole sweep in nanoseconds.
    pub total_nanos: u64,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// Per-scenario duration in nanoseconds, in scenario order.
    pub scenario_nanos: Vec<u64>,
    /// Fault-tolerance outcome counts, present when the sweep ran through
    /// a fault-tolerant contract ([`crate::scenario::SweepPlan::run`]).
    pub faults: Option<FaultReport>,
    /// Watchdog/checkpoint accounting, present when the sweep ran under a
    /// [`crate::supervise::SweepSupervisor`]
    /// ([`crate::scenario::SweepPlan::run`] or
    /// [`crate::scenario::SweepPlan::run_checkpointed`]).
    pub supervision: Option<SupervisionReport>,
}

impl SweepReport {
    /// Total busy time across all scenarios (the sequential-equivalent
    /// cost), in nanoseconds.
    pub fn busy_nanos(&self) -> u64 {
        self.scenario_nanos.iter().sum()
    }

    /// Worker utilization in `[0, 1]`: busy time over `workers × wall`.
    /// 1.0 means every worker was saturated for the whole sweep.
    pub fn utilization(&self) -> f64 {
        if self.total_nanos == 0 || self.workers == 0 {
            0.0
        } else {
            (self.busy_nanos() as f64 / (self.workers as u64 * self.total_nanos) as f64).min(1.0)
        }
    }

    /// Parallel speedup over the sequential-equivalent cost.
    pub fn speedup(&self) -> f64 {
        if self.total_nanos == 0 {
            0.0
        } else {
            self.busy_nanos() as f64 / self.total_nanos as f64
        }
    }

    /// Percentiles (p50/p95/p99) over the per-scenario durations —
    /// the tail-latency view of the sweep. `None` when the sweep ran
    /// without telemetry (every duration is zero) or had no scenarios.
    pub fn duration_percentiles(&self) -> Option<Percentiles> {
        if self.scenario_nanos.iter().all(|&n| n == 0) {
            return None;
        }
        Percentiles::from_nanos(&self.scenario_nanos)
    }

    /// One-line human-readable digest.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} scenarios on {} workers: {:.3} ms wall, {:.3} ms busy, {:.2}× speedup, {:.0}% utilization",
            self.scenario_nanos.len(),
            self.workers,
            self.total_nanos as f64 / 1e6,
            self.busy_nanos() as f64 / 1e6,
            self.speedup(),
            self.utilization() * 100.0,
        );
        if let Some(p) = self.duration_percentiles() {
            line.push_str(&format!(
                ", p50/p95/p99 {:.3}/{:.3}/{:.3} ms",
                p.p50 / 1e6,
                p.p95 / 1e6,
                p.p99 / 1e6,
            ));
        }
        if let Some(f) = &self.faults {
            line.push_str(" — ");
            line.push_str(&f.summary());
        }
        if let Some(s) = &self.supervision {
            line.push_str(" — ");
            line.push_str(&s.summary());
        }
        line
    }

    /// The sweep aggregates as a JSON document.
    pub fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("total_ns".into(), Value::from(self.total_nanos)),
            ("workers".into(), Value::from(self.workers)),
            ("busy_ns".into(), Value::from(self.busy_nanos())),
            (
                "utilization".into(),
                Value::from(finite_or_zero(self.utilization())),
            ),
            (
                "speedup".into(),
                Value::from(finite_or_zero(self.speedup())),
            ),
            (
                "scenario_ns".into(),
                Value::Array(
                    self.scenario_nanos
                        .iter()
                        .map(|&n| Value::from(n))
                        .collect(),
                ),
            ),
        ];
        if let Some(p) = self.duration_percentiles() {
            fields.push(("scenario_ns_percentiles".into(), p.to_json_value()));
        }
        if let Some(f) = &self.faults {
            fields.push(("faults".into(), f.to_json_value()));
        }
        if let Some(s) = &self.supervision {
            fields.push(("supervision".into(), s.to_json_value()));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            mode: RunMode::Streaming { chunk_len: 80 },
            total_nanos: 2_000_000,
            rounds: 10,
            health: Health::Healthy,
            breaker_trips: 0,
            bypassed_invocations: 0,
            blocks: vec![
                BlockStats {
                    name: "src".into(),
                    invocations: 10,
                    nanos: 1_200_000,
                    samples_in: 0,
                    samples_out: 800,
                    buffer_high_water: 80,
                    bypassed: 0,
                },
                BlockStats {
                    name: "pa".into(),
                    invocations: 10,
                    nanos: 300_000,
                    samples_in: 800,
                    samples_out: 800,
                    buffer_high_water: 80,
                    bypassed: 0,
                },
            ],
        }
    }

    #[test]
    fn report_arithmetic() {
        let r = report();
        assert_eq!(r.source_samples(), 800);
        assert_eq!(r.block_nanos(), 1_500_000);
        assert!((r.throughput_msps() - 0.4).abs() < 1e-12);
        let src = r.block("src").expect("present");
        assert!((src.nanos_per_invocation() - 120_000.0).abs() < 1e-9);
        assert!((src.throughput_msps() - 800.0 * 1e3 / 1.2e6).abs() < 1e-9);
        assert!(r.block("missing").is_none());
    }

    #[test]
    fn summary_lists_heaviest_block_first() {
        let s = report().summary();
        let src_at = s.find("| src |").expect("src row");
        let pa_at = s.find("| pa |").expect("pa row");
        assert!(src_at < pa_at, "heavier block first:\n{s}");
        assert!(s.contains("streaming(chunk=80)"));
    }

    #[test]
    fn json_roundtrips_through_the_shim_parser() {
        let r = report();
        let doc = serde::json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(doc.get("rounds").and_then(Value::as_f64), Some(10.0));
        let blocks = doc.get("blocks").and_then(Value::as_array).expect("array");
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].get("name").and_then(Value::as_str), Some("src"));
        assert_eq!(blocks[0].get("ns").and_then(Value::as_f64), Some(1.2e6));
    }

    #[test]
    fn zero_division_guards() {
        let empty = BlockStats::default();
        assert_eq!(empty.nanos_per_invocation(), 0.0);
        assert_eq!(empty.throughput_msps(), 0.0);
        let r = RunReport {
            mode: RunMode::Batch,
            total_nanos: 0,
            rounds: 1,
            health: Health::Healthy,
            breaker_trips: 0,
            bypassed_invocations: 0,
            blocks: vec![],
        };
        assert_eq!(r.throughput_msps(), 0.0);
    }

    #[test]
    fn sweep_report_aggregates() {
        let s = SweepReport {
            total_nanos: 1_000_000,
            workers: 2,
            scenario_nanos: vec![600_000, 800_000],
            faults: None,
            supervision: None,
        };
        assert_eq!(s.busy_nanos(), 1_400_000);
        assert!((s.utilization() - 0.7).abs() < 1e-12);
        assert!((s.speedup() - 1.4).abs() < 1e-12);
        assert!(s.summary().contains("2 workers"));
        let doc = serde::json::parse(&s.to_json_value().to_string()).expect("valid");
        assert_eq!(doc.get("workers").and_then(Value::as_f64), Some(2.0));
        assert!(doc.get("faults").is_none());
        let degenerate = SweepReport {
            total_nanos: 0,
            workers: 0,
            scenario_nanos: vec![],
            faults: None,
            supervision: None,
        };
        assert_eq!(degenerate.utilization(), 0.0);
        assert_eq!(degenerate.speedup(), 0.0);
    }

    #[test]
    fn fault_report_counts_and_rates() {
        let f = FaultReport {
            succeeded: 5,
            retried: 2,
            faulted: 1,
            panics_caught: 3,
            errors_caught: 2,
        };
        assert_eq!(f.scenarios(), 8);
        assert_eq!(f.completed(), 7);
        assert!((f.survival_rate() - 7.0 / 8.0).abs() < 1e-12);
        let s = f.summary();
        assert!(s.contains("5 clean"), "{s}");
        assert!(s.contains("2 retried"), "{s}");
        assert!(s.contains("1 faulted"), "{s}");
        // Empty sweep counts as fully survived.
        assert_eq!(FaultReport::default().survival_rate(), 1.0);
    }

    #[test]
    fn fault_report_threads_through_sweep_json_and_summary() {
        let s = SweepReport {
            total_nanos: 1_000,
            workers: 1,
            scenario_nanos: vec![500],
            faults: Some(FaultReport {
                succeeded: 0,
                retried: 0,
                faulted: 1,
                panics_caught: 2,
                errors_caught: 0,
            }),
            supervision: None,
        };
        assert!(s.summary().contains("caught 2 panics"), "{}", s.summary());
        let doc = serde::json::parse(&s.to_json_value().to_string()).expect("valid");
        let faults = doc.get("faults").expect("faults object");
        assert_eq!(faults.get("faulted").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            faults.get("panics_caught").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            faults.get("survival_rate").and_then(Value::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn supervision_threads_through_run_report_summary_and_json() {
        let mut r = report();
        r.health = Health::Degraded;
        r.breaker_trips = 1;
        r.bypassed_invocations = 10;
        r.blocks[1].bypassed = 10;
        let s = r.summary();
        assert!(s.contains("health degraded"), "{s}");
        assert!(
            s.contains("1 breaker trip(s), 10 invocation(s) bypassed"),
            "{s}"
        );
        let doc = serde::json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(doc.get("health").and_then(Value::as_str), Some("degraded"));
        assert_eq!(doc.get("breaker_trips").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            doc.get("bypassed_invocations").and_then(Value::as_f64),
            Some(10.0)
        );
        let blocks = doc.get("blocks").and_then(Value::as_array).expect("array");
        assert_eq!(
            blocks[1].get("bypassed").and_then(Value::as_f64),
            Some(10.0)
        );
    }

    #[test]
    fn supervision_threads_through_sweep_json_and_summary() {
        let s = SweepReport {
            total_nanos: 1_000,
            workers: 1,
            scenario_nanos: vec![500],
            faults: None,
            supervision: Some(SupervisionReport {
                deadline_kills: 3,
                resumed: 2,
            }),
        };
        assert!(s.summary().contains("3 deadline kills"), "{}", s.summary());
        let doc = serde::json::parse(&s.to_json_value().to_string()).expect("valid");
        let sup = doc.get("supervision").expect("supervision object");
        assert_eq!(sup.get("deadline_kills").and_then(Value::as_f64), Some(3.0));
        assert_eq!(sup.get("resumed").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn percentiles_over_known_samples() {
        let p = Percentiles::from_samples(&[4.0, 1.0, 3.0, 2.0]).expect("nonempty");
        assert_eq!(p.count, 4);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 4.0);
        assert!((p.mean - 2.5).abs() < 1e-12);
        // rank 0.5·3 = 1.5 → halfway between 2 and 3.
        assert!((p.p50 - 2.5).abs() < 1e-12);
        // rank 0.95·3 = 2.85 → between 3 and 4.
        assert!((p.p95 - 3.85).abs() < 1e-12);
        assert!((p.p99 - 3.97).abs() < 1e-12);
        assert!(Percentiles::from_samples(&[]).is_none());
        let single = Percentiles::from_samples(&[7.0]).expect("nonempty");
        assert_eq!(single.p50, 7.0);
        assert_eq!(single.p99, 7.0);
    }

    #[test]
    fn percentiles_are_deterministic_and_named() {
        let samples = [9.0, 1.0, 5.0, 5.0, 2.0, 8.0];
        let a = Percentiles::from_samples(&samples).expect("nonempty");
        let b = Percentiles::from_samples(&samples).expect("nonempty");
        assert_eq!(a, b);
        assert_eq!(a.to_json_value().to_string(), b.to_json_value().to_string());
        assert_eq!(a.stat("p50"), Some(a.p50));
        assert_eq!(a.stat("mean"), Some(a.mean));
        assert_eq!(a.stat("p37"), None);
    }

    #[test]
    fn sweep_report_threads_duration_percentiles() {
        let s = SweepReport {
            total_nanos: 10_000_000,
            workers: 2,
            scenario_nanos: vec![1_000_000, 2_000_000, 3_000_000, 10_000_000],
            faults: None,
            supervision: None,
        };
        let p = s.duration_percentiles().expect("telemetry on");
        assert_eq!(p.count, 4);
        assert!((p.p50 - 2_500_000.0).abs() < 1.0);
        assert!(s.summary().contains("p50/p95/p99"), "{}", s.summary());
        let doc = serde::json::parse(&s.to_json_value().to_string()).expect("valid");
        let pct = doc
            .get("scenario_ns_percentiles")
            .expect("percentiles object");
        assert_eq!(pct.get("count").and_then(Value::as_f64), Some(4.0));
        assert_eq!(pct.get("max").and_then(Value::as_f64), Some(10_000_000.0));
        // Telemetry off (all-zero durations) → no percentiles emitted.
        let off = SweepReport {
            total_nanos: 0,
            workers: 2,
            scenario_nanos: vec![0, 0],
            faults: None,
            supervision: None,
        };
        assert!(off.duration_percentiles().is_none());
        let doc = serde::json::parse(&off.to_json_value().to_string()).expect("valid");
        assert!(doc.get("scenario_ns_percentiles").is_none());
    }

    #[test]
    fn finite_clamp_never_emits_non_finite() {
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), f64::MAX);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), f64::MIN);
        assert_eq!(finite_or_zero(1.25), 1.25);
    }
}

//! OFDM symbol demodulation: guard stripping, FFT, cell extraction.

use ofdm_core::params::OfdmParams;
use ofdm_core::pilots::PilotGenerator;
use ofdm_dsp::fft::Fft;
use ofdm_dsp::Complex64;

/// Demodulates the OFDM symbols of a frame back to frequency-domain cells,
/// mirroring the transmitter's normalization so that noiseless loopback
/// recovers the transmitted cells exactly.
#[derive(Debug, Clone)]
pub struct OfdmDemodulator {
    fft: Fft,
    fft_size: usize,
    cp_len: usize,
    pilots: PilotGenerator,
    params: OfdmParams,
}

impl OfdmDemodulator {
    /// Builds a demodulator matched to a transmit parameter set.
    pub fn new(params: OfdmParams) -> Self {
        let fft_size = params.map.fft_size();
        let cp_len = params.guard.samples(fft_size);
        OfdmDemodulator {
            fft: Fft::new(fft_size),
            fft_size,
            cp_len,
            pilots: PilotGenerator::new(params.pilots.clone()),
            params,
        }
    }

    /// Net samples per OFDM symbol (guard + useful part).
    pub fn symbol_len(&self) -> usize {
        self.fft_size + self.cp_len
    }

    /// The CP-stripped FFT window `[start, start + fft_size)` for a symbol
    /// at `offset`, or `None` if fewer than `len` samples are available.
    fn window_start(&self, len: usize, offset: usize) -> Option<usize> {
        let start = offset + self.cp_len;
        if start + self.fft_size > len {
            return None;
        }
        Some(start)
    }

    /// Gathers the FFT window from split re/im slices into the interleaved
    /// complex buffer the (radix-2) complex engine expects. Gathering and
    /// using `Fft::forward` keeps the split entry points bit-identical to
    /// the `&[Complex64]` ones — the radix-4 split engine is only
    /// equivalent to last-ulp reassociation, which would break the
    /// registry-wide bit-exactness assertions.
    fn gather_window(&self, re: &[f64], im: &[f64], start: usize) -> Vec<Complex64> {
        (start..start + self.fft_size)
            .map(|i| Complex64::new(re[i], im[i]))
            .collect()
    }

    /// All occupied carriers of data symbol `symbol_index`, sorted.
    fn symbol_carriers(&self, symbol_index: usize) -> Vec<i32> {
        let pilot_carriers = self.pilots.carriers(symbol_index);
        let data = self.params.map.data_excluding(&pilot_carriers);
        let mut carriers: Vec<i32> = pilot_carriers;
        carriers.extend(data);
        carriers.sort_unstable();
        carriers
    }

    /// Extracts `(carrier, value)` cells from a forward-FFT'd symbol,
    /// undoing the transmitter normalization.
    fn extract_cells(&self, freq: &[Complex64], carriers: &[i32]) -> Vec<(i32, Complex64)> {
        // TX scaled by fft_size/√occupied; forward FFT multiplies by
        // fft_size again, so divide by fft_size·(fft_size/√occ)⁻¹ → i.e.
        // multiply by √occ / fft_size.
        let occupied = if self.params.map.is_hermitian() {
            carriers.len() * 2
        } else {
            carriers.len()
        };
        let scale = (occupied.max(1) as f64).sqrt() / self.fft_size as f64;
        carriers
            .iter()
            .map(|&k| {
                let bin = if k >= 0 {
                    k as usize
                } else {
                    (self.fft_size as i32 + k) as usize
                };
                (k, freq[bin].scale(scale))
            })
            .collect()
    }

    /// Demodulates symbol `symbol_index` (indexing data symbols from 0)
    /// whose samples start at `samples[offset]`; returns all occupied
    /// cells `(carrier, value)` in carrier order, pilots included.
    ///
    /// Returns `None` if the slice is too short.
    pub fn demodulate_at(
        &self,
        samples: &[Complex64],
        offset: usize,
        symbol_index: usize,
    ) -> Option<Vec<(i32, Complex64)>> {
        let start = self.window_start(samples.len(), offset)?;
        let mut freq = samples[start..start + self.fft_size].to_vec();
        self.fft.forward(&mut freq);
        Some(self.extract_cells(&freq, &self.symbol_carriers(symbol_index)))
    }

    /// Split-slice variant of [`OfdmDemodulator::demodulate_at`]: reads the
    /// symbol from separate re/im slices (the `rfsim::Signal`
    /// structure-of-arrays layout) so callers on the hot path never
    /// materialize a `Vec<Complex64>` view of the whole frame.
    /// Bit-identical to the interleaved entry point.
    ///
    /// Returns `None` if the slices are too short.
    pub fn demodulate_at_parts(
        &self,
        re: &[f64],
        im: &[f64],
        offset: usize,
        symbol_index: usize,
    ) -> Option<Vec<(i32, Complex64)>> {
        let start = self.window_start(re.len().min(im.len()), offset)?;
        let mut freq = self.gather_window(re, im, start);
        self.fft.forward(&mut freq);
        Some(self.extract_cells(&freq, &self.symbol_carriers(symbol_index)))
    }

    /// Demodulates an arbitrary carrier set at `samples[offset]` (guard
    /// stripped, transmitter normalization undone) — used to recover
    /// received preamble/reference symbols whose cell layout differs from
    /// data symbols.
    ///
    /// Returns `None` if the slice is too short.
    pub fn demodulate_carriers(
        &self,
        samples: &[Complex64],
        offset: usize,
        carriers: &[i32],
    ) -> Option<Vec<(i32, Complex64)>> {
        let start = self.window_start(samples.len(), offset)?;
        let mut freq = samples[start..start + self.fft_size].to_vec();
        self.fft.forward(&mut freq);
        Some(self.extract_cells(&freq, carriers))
    }

    /// Split-slice variant of [`OfdmDemodulator::demodulate_carriers`];
    /// bit-identical to the interleaved entry point.
    ///
    /// Returns `None` if the slices are too short.
    pub fn demodulate_carriers_parts(
        &self,
        re: &[f64],
        im: &[f64],
        offset: usize,
        carriers: &[i32],
    ) -> Option<Vec<(i32, Complex64)>> {
        let start = self.window_start(re.len().min(im.len()), offset)?;
        let mut freq = self.gather_window(re, im, start);
        self.fft.forward(&mut freq);
        Some(self.extract_cells(&freq, carriers))
    }

    /// The data carriers of symbol `symbol_index` (used band minus that
    /// symbol's pilots).
    pub fn data_carriers(&self, symbol_index: usize) -> Vec<i32> {
        let pilot_carriers = self.pilots.carriers(symbol_index);
        self.params.map.data_excluding(&pilot_carriers)
    }

    /// The pilot cells the transmitter placed in symbol `symbol_index`.
    pub fn pilot_cells(&self, symbol_index: usize) -> Vec<(i32, Complex64)> {
        self.pilots.cells(symbol_index)
    }

    /// The parameter set this demodulator was built from.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_core::params::presets::minimal_test_params;
    use ofdm_core::MotherModel;

    #[test]
    fn loopback_recovers_cells_exactly() {
        let params = minimal_test_params();
        let mut tx = MotherModel::new(params.clone()).unwrap();
        let payload: Vec<u8> = (0..48).map(|i| ((i * 3) % 2) as u8).collect();
        let frame = tx.transmit(&payload).unwrap();
        let demod = OfdmDemodulator::new(params);
        assert_eq!(demod.symbol_len(), 80);
        // Demodulate straight off the frame's split storage — the hot-path
        // entry point — rather than materializing samples() per symbol.
        let (re, im) = frame.signal().parts();
        for (s, tx_cells) in frame.symbol_cells().iter().enumerate() {
            let rx_cells = demod
                .demodulate_at_parts(re, im, s * 80, s)
                .expect("frame long enough");
            assert_eq!(rx_cells.len(), tx_cells.len());
            for (r, t) in rx_cells.iter().zip(tx_cells) {
                assert_eq!(r.0, t.0);
                assert!((r.1 - t.1).abs() < 1e-9, "carrier {}", r.0);
            }
        }
    }

    #[test]
    fn too_short_slice_returns_none() {
        let demod = OfdmDemodulator::new(minimal_test_params());
        assert!(demod.demodulate_at(&[Complex64::ZERO; 40], 0, 0).is_none());
    }

    #[test]
    fn hermitian_loopback() {
        use ofdm_core::constellation::Modulation;
        use ofdm_core::map::SubcarrierMap;
        use ofdm_core::params::OfdmParams;
        use ofdm_core::symbol::GuardInterval;
        let params = OfdmParams::builder("dmt-test")
            .sample_rate(1e6)
            .map(SubcarrierMap::new(128, (10..=50).collect(), true).unwrap())
            .guard(GuardInterval::Samples(8))
            .modulation(Modulation::Qam(4))
            .build()
            .unwrap();
        let mut tx = MotherModel::new(params.clone()).unwrap();
        let frame = tx.transmit(&[1u8; 100]).unwrap();
        let demod = OfdmDemodulator::new(params);
        let cells = demod.demodulate_at(&frame.samples(), 0, 0).unwrap();
        for (r, t) in cells.iter().zip(&frame.symbol_cells()[0]) {
            assert!((r.1 - t.1).abs() < 1e-9);
        }
    }

    #[test]
    fn split_parts_path_bit_identical_to_interleaved() {
        let params = minimal_test_params();
        let mut tx = MotherModel::new(params.clone()).unwrap();
        let payload: Vec<u8> = (0..96).map(|i| ((i * 7) % 2) as u8).collect();
        let frame = tx.transmit(&payload).unwrap();
        let samples = frame.samples();
        let re: Vec<f64> = samples.iter().map(|z| z.re).collect();
        let im: Vec<f64> = samples.iter().map(|z| z.im).collect();
        let demod = OfdmDemodulator::new(params);
        let sym_len = demod.symbol_len();
        for s in 0..frame.symbol_cells().len() {
            let a = demod.demodulate_at(&samples, s * sym_len, s).unwrap();
            let b = demod.demodulate_at_parts(&re, &im, s * sym_len, s).unwrap();
            assert_eq!(a, b, "symbol {s} must be bit-identical across layouts");
            let carriers = demod.data_carriers(s);
            let c = demod
                .demodulate_carriers(&samples, s * sym_len, &carriers)
                .unwrap();
            let d = demod
                .demodulate_carriers_parts(&re, &im, s * sym_len, &carriers)
                .unwrap();
            assert_eq!(c, d, "symbol {s} carrier set must match bit-exactly");
        }
        // Too-short slices behave identically too.
        assert!(demod
            .demodulate_at_parts(&re[..40], &im[..40], 0, 0)
            .is_none());
    }

    #[test]
    fn data_carriers_exclude_pilots() {
        use ofdm_core::pilots::ieee80211a_pilots;
        let mut params = minimal_test_params();
        params.map = ofdm_core::map::SubcarrierMap::contiguous(64, -26, 26, false).unwrap();
        params.pilots = ieee80211a_pilots();
        let demod = OfdmDemodulator::new(params);
        let data = demod.data_carriers(0);
        assert_eq!(data.len(), 48);
        assert!(!data.contains(&7));
        assert_eq!(demod.pilot_cells(0).len(), 4);
    }
}

//! FEC decoding: hard-decision Viterbi with depuncturing.
//!
//! Decodes the K≤16 convolutional codes of [`ofdm_core::fec::conv`].
//! Punctured positions re-enter the stream as erasures that contribute no
//! branch metric. Reed–Solomon decoding lives with its encoder in
//! [`ofdm_core::fec::rs`].

use ofdm_core::fec::ConvSpec;

/// Re-inserts punctured positions as `None` (erasures) according to the
/// spec's pattern; `Some(bit)` elsewhere.
pub fn depuncture(spec: &ConvSpec, punctured: &[u8]) -> Vec<Option<u8>> {
    let pattern = &spec.puncture.pattern;
    if pattern.is_empty() {
        return punctured.iter().map(|&b| Some(b & 1)).collect();
    }
    let mut out = Vec::with_capacity(punctured.len() * 2);
    let mut src = 0usize;
    let mut phase = 0usize;
    while src < punctured.len() {
        if pattern[phase] {
            out.push(Some(punctured[src] & 1));
            src += 1;
        } else {
            out.push(None);
        }
        phase = (phase + 1) % pattern.len();
    }
    // Trailing deleted positions of the final period.
    while !pattern[phase] {
        out.push(None);
        phase = (phase + 1) % pattern.len();
        if out.len() > punctured.len() * pattern.len() {
            break;
        }
    }
    out
}

/// A hard-decision Viterbi decoder for one [`ConvSpec`].
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    constraint: u32,
    polynomials: Vec<u32>,
    spec: ConvSpec,
}

impl ViterbiDecoder {
    /// Builds a decoder matched to an encoder spec.
    ///
    /// # Panics
    ///
    /// Panics if the constraint length exceeds 16 (the trellis would need
    /// more than 32k states).
    pub fn new(spec: ConvSpec) -> Self {
        assert!(
            spec.constraint >= 2 && spec.constraint <= 16,
            "constraint length out of range"
        );
        ViterbiDecoder {
            constraint: spec.constraint,
            polynomials: spec.polynomials.clone(),
            spec,
        }
    }

    /// The matching spec.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }

    /// Decodes a *punctured* hard-bit stream produced by
    /// `ConvCode::encode_terminated`, returning the message bits with the
    /// K−1 tail bits removed.
    ///
    /// `msg_len` is the message length in bits (pre-termination); the
    /// punctured stream may carry trailing pad bits, which are ignored.
    pub fn decode_terminated(&self, punctured: &[u8], msg_len: usize) -> Vec<u8> {
        let tail = (self.constraint - 1) as usize;
        let total_in = msg_len + tail;
        let n_streams = self.polynomials.len();
        let full = depuncture(&self.spec, punctured);
        let needed = total_in * n_streams;
        // Pad with erasures if puncturing under-supplied the tail.
        let mut symbols = full;
        symbols.resize(needed.max(symbols.len()), None);
        let mut decoded = self.decode_hard(&symbols[..needed], total_in, true);
        decoded.truncate(msg_len);
        decoded
    }

    /// Core Viterbi over `steps` trellis steps; `symbols` holds
    /// `steps × n_streams` optional hard bits. When `terminated` the
    /// survivor ending in state 0 is traced; otherwise the best end state.
    pub fn decode_hard(&self, symbols: &[Option<u8>], steps: usize, terminated: bool) -> Vec<u8> {
        let k = self.constraint;
        let n_states = 1usize << (k - 1);
        let state_mask = (n_states - 1) as u32;
        let n_streams = self.polynomials.len();
        const INF: u32 = u32::MAX / 2;

        // Precompute branch outputs: full register = (state << 1) | bit.
        let mut outputs = vec![0u32; n_states * 2];
        for s in 0..n_states {
            for b in 0..2u32 {
                let full = ((s as u32) << 1) | b;
                let mut bits = 0u32;
                for (i, &g) in self.polynomials.iter().enumerate() {
                    bits |= ((full & g).count_ones() & 1) << i;
                }
                outputs[s * 2 + b as usize] = bits;
            }
        }

        let mut metric = vec![INF; n_states];
        metric[0] = 0;
        let mut decisions: Vec<Vec<u8>> = Vec::with_capacity(steps);

        for t in 0..steps {
            let mut next = vec![INF; n_states];
            let mut dec = vec![0u8; n_states];
            for s in 0..n_states {
                let m = metric[s];
                if m >= INF {
                    continue;
                }
                for b in 0..2u32 {
                    let out = outputs[s * 2 + b as usize];
                    let mut bm = 0u32;
                    for i in 0..n_streams {
                        if let Some(r) = symbols[t * n_streams + i] {
                            bm += (((out >> i) & 1) as u8 ^ r) as u32;
                        }
                    }
                    let ns = ((((s as u32) << 1) | b) & state_mask) as usize;
                    let cand = m + bm;
                    if cand < next[ns] {
                        next[ns] = cand;
                        // Decision: the *previous* state's top bit is what
                        // falls out; store the input bit and source parity.
                        dec[ns] = ((s >> (k - 2)) as u8) & 1;
                    }
                }
            }
            decisions.push(dec);
            metric = next;
        }

        // Pick the end state.
        let mut state = if terminated {
            0usize
        } else {
            metric
                .iter()
                .enumerate()
                .min_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0)
        };

        // Traceback: at each step the stored decision bit is the MSB of the
        // predecessor state; the input bit is the LSB of the current state.
        let mut out = vec![0u8; steps];
        for t in (0..steps).rev() {
            let input = (state & 1) as u8;
            out[t] = input;
            let msb = decisions[t][state] as usize;
            state = (state >> 1) | (msb << (k as usize - 2));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_core::fec::ConvCode;

    fn roundtrip(spec: ConvSpec, msg: &[u8]) -> Vec<u8> {
        let mut enc = ConvCode::new(spec.clone()).unwrap();
        let coded = enc.encode_terminated(msg);
        ViterbiDecoder::new(spec).decode_terminated(&coded, msg.len())
    }

    fn test_msg(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 7 + 3) % 5 < 2) as u8).collect()
    }

    #[test]
    fn clean_rate_half_roundtrip() {
        let msg = test_msg(100);
        assert_eq!(roundtrip(ConvSpec::k7_rate_half(), &msg), msg);
    }

    #[test]
    fn clean_punctured_roundtrips() {
        for spec in [
            ConvSpec::k7_rate_two_thirds(),
            ConvSpec::k7_rate_three_quarters(),
            ConvSpec::k7_rate_five_sixths(),
        ] {
            let msg = test_msg(120);
            assert_eq!(roundtrip(spec.clone(), &msg), msg, "{:?}", spec.puncture);
        }
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let spec = ConvSpec::k7_rate_half();
        let msg = test_msg(200);
        let mut enc = ConvCode::new(spec.clone()).unwrap();
        let mut coded = enc.encode_terminated(&msg);
        // Flip well-separated bits — free distance 10 handles these.
        for pos in [10usize, 90, 170, 250, 330] {
            coded[pos] ^= 1;
        }
        let decoded = ViterbiDecoder::new(spec).decode_terminated(&coded, msg.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn corrects_errors_in_punctured_stream() {
        let spec = ConvSpec::k7_rate_three_quarters();
        let msg = test_msg(96);
        let mut enc = ConvCode::new(spec.clone()).unwrap();
        let mut coded = enc.encode_terminated(&msg);
        coded[17] ^= 1;
        coded[89] ^= 1;
        let decoded = ViterbiDecoder::new(spec).decode_terminated(&coded, msg.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn depuncture_reinserts_erasures() {
        let spec = ConvSpec::k7_rate_two_thirds(); // pattern 1,1,1,0
        let full = depuncture(&spec, &[1, 0, 1]);
        assert_eq!(full, vec![Some(1), Some(0), Some(1), None]);
    }

    #[test]
    fn depuncture_no_pattern_is_identity() {
        let spec = ConvSpec::k7_rate_half();
        let full = depuncture(&spec, &[1, 1, 0]);
        assert_eq!(full, vec![Some(1), Some(1), Some(0)]);
    }

    #[test]
    fn short_messages() {
        let msg = vec![1u8];
        assert_eq!(roundtrip(ConvSpec::k7_rate_half(), &msg), msg);
        let msg2 = vec![1u8, 0, 1];
        assert_eq!(roundtrip(ConvSpec::k7_rate_half(), &msg2), msg2);
    }

    #[test]
    fn small_constraint_code() {
        // K = 3, g = (7, 5) — the classic example code.
        let spec = ConvSpec {
            constraint: 3,
            polynomials: vec![0b111, 0b101],
            puncture: ofdm_core::fec::PunctureSpec::none(),
        };
        let msg = test_msg(64);
        assert_eq!(roundtrip(spec, &msg), msg);
    }

    #[test]
    fn unterminated_decode_best_state() {
        let spec = ConvSpec::k7_rate_half();
        let msg = test_msg(50);
        let mut enc = ConvCode::new(spec.clone()).unwrap();
        let coded = enc.encode(&msg); // NOT terminated
        let symbols: Vec<Option<u8>> = coded.iter().map(|&b| Some(b)).collect();
        let decoded = ViterbiDecoder::new(spec).decode_hard(&symbols, msg.len(), false);
        // All but the last few bits (no tail protection) must match.
        assert_eq!(&decoded[..40], &msg[..40]);
    }

    #[test]
    #[should_panic(expected = "constraint")]
    fn giant_constraint_rejected() {
        let spec = ConvSpec {
            constraint: 17,
            polynomials: vec![1],
            puncture: ofdm_core::fec::PunctureSpec::none(),
        };
        let _ = ViterbiDecoder::new(spec);
    }
}

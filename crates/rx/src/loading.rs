//! Per-tone SNR measurement and DMT bit loading.
//!
//! The DSL members of the standard family don't pick one constellation —
//! they *train*: measure each tone's SNR over the actual loop, then load
//! `bₖ = ⌊log₂(1 + SNRₖ/Γ)⌋` bits per tone (the Shannon-gap
//! approximation). This module provides the measurement and the loading
//! computation; feeding the result back into a Mother Model's
//! `bit_loading` is exactly the reconfiguration loop the paper's
//! co-simulation enables (see `examples/adsl_training.rs`).

use ofdm_dsp::Complex64;
use std::collections::BTreeMap;

/// Per-tone SNR statistics accumulated from known cells.
#[derive(Debug, Clone, Default)]
pub struct ToneSnr {
    /// carrier → (signal power sum, error power sum, count).
    acc: BTreeMap<i32, (f64, f64, u32)>,
}

impl ToneSnr {
    /// An empty accumulator.
    pub fn new() -> Self {
        ToneSnr::default()
    }

    /// Accumulates one symbol's received cells against the known
    /// transmitted reference (matched by carrier).
    pub fn accumulate(&mut self, received: &[(i32, Complex64)], reference: &[(i32, Complex64)]) {
        let ref_map: BTreeMap<i32, Complex64> = reference.iter().copied().collect();
        for &(k, r) in received {
            if let Some(&x) = ref_map.get(&k) {
                let e = self.acc.entry(k).or_insert((0.0, 0.0, 0));
                e.0 += x.norm_sqr();
                e.1 += (r - x).norm_sqr();
                e.2 += 1;
            }
        }
    }

    /// Number of tones with measurements.
    pub fn tone_count(&self) -> usize {
        self.acc.len()
    }

    /// The measured SNR (linear) of tone `k`, if observed. Error-free
    /// tones report `f64::INFINITY`.
    pub fn snr(&self, k: i32) -> Option<f64> {
        let &(sig, err, n) = self.acc.get(&k)?;
        if n == 0 || sig == 0.0 {
            return None;
        }
        Some(if err == 0.0 { f64::INFINITY } else { sig / err })
    }

    /// The measured SNR of tone `k` in dB.
    pub fn snr_db(&self, k: i32) -> Option<f64> {
        self.snr(k).map(|s| 10.0 * s.log10())
    }

    /// All measured tones, ascending.
    pub fn tones(&self) -> Vec<i32> {
        self.acc.keys().copied().collect()
    }
}

/// Computes the gap-approximation bit loading `bₖ = ⌊log₂(1 + SNRₖ/Γ)⌋`,
/// clamped to `max_bits`, for every measured tone. `gap_db` is the SNR
/// gap Γ (≈ 9.8 dB for uncoded QAM at 1e-7, reduced by coding gain,
/// increased by margin).
///
/// Tones whose loading falls below `min_bits` are reported with 0 bits
/// (unusable — DMT transmitters leave them dark).
pub fn gap_loading(snr: &ToneSnr, gap_db: f64, min_bits: u8, max_bits: u8) -> Vec<(i32, u8)> {
    let gap = 10f64.powf(gap_db / 10.0);
    snr.tones()
        .into_iter()
        .map(|k| {
            let s = snr.snr(k).unwrap_or(0.0);
            let b = if s.is_infinite() {
                max_bits
            } else {
                ((1.0 + s / gap).log2().floor().max(0.0) as u8).min(max_bits)
            };
            (k, if b < min_bits { 0 } else { b })
        })
        .collect()
}

/// Aggregate bits per DMT symbol of a loading table.
pub fn total_bits(loading: &[(i32, u8)]) -> usize {
    loading.iter().map(|&(_, b)| b as usize).sum()
}

/// Splits a loading table into the carrier list and modulation table the
/// Mother Model builder wants, dropping dark (0-bit) tones.
pub fn to_mother_model_loading(
    loading: &[(i32, u8)],
) -> (Vec<i32>, Vec<ofdm_core::constellation::Modulation>) {
    let mut carriers = Vec::new();
    let mut mods = Vec::new();
    for &(k, b) in loading {
        if b > 0 {
            carriers.push(k);
            mods.push(ofdm_core::constellation::Modulation::from_bits(b));
        }
    }
    (carriers, mods)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(values: &[(i32, f64)]) -> Vec<(i32, Complex64)> {
        values
            .iter()
            .map(|&(k, re)| (k, Complex64::new(re, 0.0)))
            .collect()
    }

    #[test]
    fn snr_measures_known_noise() {
        let mut snr = ToneSnr::new();
        // Tone 5: unit signal, error amplitude 0.1 → SNR = 100 (20 dB).
        for _ in 0..50 {
            snr.accumulate(&cells(&[(5, 1.1)]), &cells(&[(5, 1.0)]));
        }
        assert_eq!(snr.tone_count(), 1);
        assert!((snr.snr(5).unwrap() - 100.0).abs() < 1e-9);
        assert!((snr.snr_db(5).unwrap() - 20.0).abs() < 1e-9);
        assert!(snr.snr(6).is_none());
    }

    #[test]
    fn error_free_tone_is_infinite() {
        let mut snr = ToneSnr::new();
        snr.accumulate(&cells(&[(1, 1.0)]), &cells(&[(1, 1.0)]));
        assert_eq!(snr.snr(1), Some(f64::INFINITY));
    }

    #[test]
    fn unmatched_carriers_ignored() {
        let mut snr = ToneSnr::new();
        snr.accumulate(&cells(&[(1, 1.0), (9, 5.0)]), &cells(&[(1, 1.0)]));
        assert_eq!(snr.tone_count(), 1);
    }

    #[test]
    fn gap_loading_formula() {
        let mut snr = ToneSnr::new();
        // SNR exactly 30 dB with a 9.8 dB gap: b = ⌊log2(1 + 10^2.02)⌋ = ⌊6.72⌋ = 6.
        for (tone, err) in [
            (1i32, 10f64.powf(-30.0 / 20.0)),
            (2, 10f64.powf(-10.0 / 20.0)),
        ] {
            for _ in 0..10 {
                snr.accumulate(&cells(&[(tone, 1.0 + err)]), &cells(&[(tone, 1.0)]));
            }
        }
        let loading = gap_loading(&snr, 9.8, 2, 15);
        let b1 = loading.iter().find(|c| c.0 == 1).unwrap().1;
        let b2 = loading.iter().find(|c| c.0 == 2).unwrap().1;
        assert_eq!(b1, 6);
        // 10 dB SNR with 9.8 dB gap → b = ⌊log2(2.047)⌋ = 1 < min 2 → dark.
        assert_eq!(b2, 0);
    }

    #[test]
    fn loading_monotone_in_snr() {
        let mut snr = ToneSnr::new();
        for t in 1..=20i32 {
            let err = 10f64.powf(-(t as f64 * 2.0) / 20.0);
            snr.accumulate(&cells(&[(t, 1.0 + err)]), &cells(&[(t, 1.0)]));
        }
        let loading = gap_loading(&snr, 9.8, 0, 15);
        for w in loading.windows(2) {
            assert!(w[1].1 >= w[0].1, "{loading:?}");
        }
        // Max clamp honored.
        assert!(loading.iter().all(|&(_, b)| b <= 15));
    }

    #[test]
    fn infinite_snr_gets_max_bits() {
        let mut snr = ToneSnr::new();
        snr.accumulate(&cells(&[(3, 1.0)]), &cells(&[(3, 1.0)]));
        let loading = gap_loading(&snr, 9.8, 2, 14);
        assert_eq!(loading, vec![(3, 14)]);
    }

    #[test]
    fn mother_model_conversion_drops_dark_tones() {
        let loading = vec![(1, 4u8), (2, 0), (3, 10)];
        let (carriers, mods) = to_mother_model_loading(&loading);
        assert_eq!(carriers, vec![1, 3]);
        assert_eq!(mods.len(), 2);
        assert_eq!(mods[0].bits_per_symbol(), 4);
        assert_eq!(mods[1].bits_per_symbol(), 10);
        assert_eq!(total_bits(&loading), 14);
    }
}

//! Receiver quality metrics: BER/SER counters and cell-level EVM.

use ofdm_dsp::Complex64;

/// A running bit-error-rate counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BerCounter {
    errors: u64,
    total: u64,
}

impl BerCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        BerCounter::default()
    }

    /// Compares two bit slices position-by-position (up to the shorter
    /// length) and accumulates.
    pub fn update(&mut self, reference: &[u8], received: &[u8]) {
        let n = reference.len().min(received.len());
        self.total += n as u64;
        self.errors += reference[..n]
            .iter()
            .zip(&received[..n])
            .filter(|(a, b)| (**a & 1) != (**b & 1))
            .count() as u64;
    }

    /// Bit errors seen so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Bits compared so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The error ratio (0.0 for an empty counter).
    pub fn ber(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.errors as f64 / self.total as f64
        }
    }
}

/// RMS error-vector magnitude between received and reference cell lists
/// (matched by carrier index), as a fraction of reference RMS.
///
/// Carriers missing from either list are ignored. Returns 0.0 when
/// nothing overlaps.
pub fn cell_evm(received: &[(i32, Complex64)], reference: &[(i32, Complex64)]) -> f64 {
    let mut err = 0.0f64;
    let mut refpow = 0.0f64;
    for &(k, r) in received {
        if let Some(&(_, x)) = reference.iter().find(|c| c.0 == k) {
            err += (r - x).norm_sqr();
            refpow += x.norm_sqr();
        }
    }
    if refpow == 0.0 {
        0.0
    } else {
        (err / refpow).sqrt()
    }
}

/// EVM in dB (`20·log10`), `-inf` for a perfect match.
pub fn cell_evm_db(received: &[(i32, Complex64)], reference: &[(i32, Complex64)]) -> f64 {
    20.0 * cell_evm(received, reference).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_counts() {
        let mut c = BerCounter::new();
        c.update(&[0, 1, 1, 0], &[0, 1, 0, 0]);
        assert_eq!(c.errors(), 1);
        assert_eq!(c.total(), 4);
        assert!((c.ber() - 0.25).abs() < 1e-12);
        c.update(&[1, 1], &[1, 1]);
        assert!((c.ber() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ber_empty_is_zero() {
        assert_eq!(BerCounter::new().ber(), 0.0);
    }

    #[test]
    fn ber_handles_length_mismatch() {
        let mut c = BerCounter::new();
        c.update(&[1, 1, 1], &[1]);
        assert_eq!(c.total(), 1);
        assert_eq!(c.errors(), 0);
    }

    #[test]
    fn evm_zero_for_identical() {
        let cells = vec![(1, Complex64::ONE), (-3, Complex64::I)];
        assert!(cell_evm(&cells, &cells) < 1e-15);
        assert_eq!(cell_evm_db(&cells, &cells), f64::NEG_INFINITY);
    }

    #[test]
    fn evm_known_offset() {
        let reference = vec![(1, Complex64::ONE), (2, Complex64::ONE)];
        let received: Vec<(i32, Complex64)> = reference
            .iter()
            .map(|&(k, v)| (k, v + Complex64::new(0.1, 0.0)))
            .collect();
        assert!((cell_evm(&received, &reference) - 0.1).abs() < 1e-12);
        assert!((cell_evm_db(&received, &reference) + 20.0).abs() < 1e-9);
    }

    #[test]
    fn evm_ignores_unmatched_carriers() {
        let reference = vec![(1, Complex64::ONE)];
        let received = vec![(1, Complex64::ONE), (9, Complex64::new(100.0, 0.0))];
        assert!(cell_evm(&received, &reference) < 1e-15);
    }

    #[test]
    fn evm_empty_overlap_is_zero() {
        assert_eq!(
            cell_evm(&[(1, Complex64::ONE)], &[(2, Complex64::ONE)]),
            0.0
        );
    }
}

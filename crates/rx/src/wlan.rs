//! A synchronized 802.11a packet receiver.
//!
//! Unlike [`crate::receiver::ReferenceReceiver`] (which assumes known
//! frame timing), this receiver acquires a PPDU the way hardware does:
//!
//! 1. coarse CFO from the short training field's 16-sample periodicity,
//! 2. frame timing by cross-correlation against the known long training
//!    symbol,
//! 3. fine CFO from the two LTF repetitions,
//! 4. per-carrier channel estimation from the LTF,
//! 5. SIGNAL-field decode (rate/length announcement, parity check),
//! 6. DATA-field decode at the announced rate with pilot-based phase
//!    tracking.
//!
//! Together with [`ofdm_standards::wlan_packet::build_ppdu`] this closes
//! the full physical layer the paper says must be co-modeled ("the whole
//! physical layer of the transmitter and the receiver").

use crate::eq::ChannelEstimate;
use crate::receiver::{ReferenceReceiver, RxError};
use crate::sync;
use ofdm_dsp::bits::pack_msb_first;
use ofdm_dsp::fft::Fft;
use ofdm_dsp::Complex64;
use ofdm_standards::ieee80211a;
use ofdm_standards::wlan_packet;
use rfsim::Signal;
use std::error::Error;
use std::fmt;

/// Packet-reception failures.
#[derive(Debug, Clone, PartialEq)]
pub enum WlanRxError {
    /// No plausible preamble found in the waveform.
    NoPreamble,
    /// The SIGNAL field failed its parity/rate-code checks.
    InvalidSignalField,
    /// A field failed to demodulate.
    Field(RxError),
}

impl fmt::Display for WlanRxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WlanRxError::NoPreamble => write!(f, "no 802.11a preamble detected"),
            WlanRxError::InvalidSignalField => {
                write!(f, "SIGNAL field failed parity or rate-code validation")
            }
            WlanRxError::Field(e) => write!(f, "field decode failed: {e}"),
        }
    }
}

impl Error for WlanRxError {}

impl From<RxError> for WlanRxError {
    fn from(e: RxError) -> Self {
        WlanRxError::Field(e)
    }
}

/// A successfully received packet with its acquisition metadata.
#[derive(Debug, Clone)]
pub struct WlanPacket {
    /// The decoded PSDU bytes.
    pub psdu: Vec<u8>,
    /// The rate announced by the SIGNAL field.
    pub rate: ieee80211a::WlanRate,
    /// Total estimated carrier frequency offset (Hz).
    pub cfo_hz: f64,
    /// Sample index where the first LTF long symbol begins.
    pub ltf_start: usize,
}

/// The synchronized packet receiver.
#[derive(Debug, Clone, Default)]
pub struct WlanPacketReceiver {
    /// Maximum samples searched for the preamble (0 = whole signal).
    search_window: usize,
}

impl WlanPacketReceiver {
    /// A receiver searching the entire waveform for the preamble.
    pub fn new() -> Self {
        WlanPacketReceiver { search_window: 0 }
    }

    /// Builder: limits the preamble search to the first `n` samples.
    pub fn with_search_window(mut self, n: usize) -> Self {
        self.search_window = n;
        self
    }

    /// Receives one packet from the waveform.
    ///
    /// # Errors
    ///
    /// * [`WlanRxError::NoPreamble`] if no training structure is found.
    /// * [`WlanRxError::InvalidSignalField`] on a corrupt announcement.
    /// * [`WlanRxError::Field`] if demodulation fails.
    pub fn receive(&self, signal: &Signal) -> Result<WlanPacket, WlanRxError> {
        let fs = signal.sample_rate();
        // The whole acquisition chain runs on the signal's split re/im
        // storage — no interleaved Vec<Complex64> view of the waveform is
        // ever materialized.
        let (re, im) = signal.parts();
        if re.len() < 480 {
            return Err(WlanRxError::NoPreamble);
        }
        let window = if self.search_window == 0 {
            re.len()
        } else {
            self.search_window.min(re.len())
        };

        // 1. Coarse CFO from STF periodicity (range ±fs/32 = ±625 kHz).
        let coarse_at = sync::find_frame_start_parts(&re[..window], &im[..window], 16)
            .ok_or(WlanRxError::NoPreamble)?;
        let coarse_cfo =
            sync::estimate_cfo_parts(re, im, coarse_at, 16, fs).ok_or(WlanRxError::NoPreamble)?;
        let (cre, cim) = sync::correct_cfo_parts(re, im, coarse_cfo, fs);

        // 2. Frame timing: cross-correlate with the known long symbol.
        let ltf = ieee80211a::long_training_field();
        let reference = &ltf[32..96]; // one 64-sample long-symbol body
        let ltf_start = best_double_correlation(&cre[..window], &cim[..window], reference, 64)
            .ok_or(WlanRxError::NoPreamble)?;

        // 3. Fine CFO from the two LTF bodies (range ±156 kHz).
        let fine_cfo = sync::estimate_cfo_parts(&cre, &cim, ltf_start, 64, fs)
            .ok_or(WlanRxError::NoPreamble)?;
        let (cre, cim) = sync::correct_cfo_parts(&cre, &cim, fine_cfo, fs);

        // 4. Channel estimation from the averaged LTF bodies.
        let channel = ltf_channel_estimate(&cre, &cim, ltf_start);

        // 5. SIGNAL field: one BPSK symbol right after the LTF.
        let signal_start = ltf_start + 128;
        if signal_start + 80 > cre.len() {
            return Err(WlanRxError::NoPreamble);
        }
        let mut sig_params = wlan_packet::signal_params();
        sig_params.preamble = Vec::new();
        let mut sig_rx = ReferenceReceiver::new(sig_params)?.with_pilot_tracking(true);
        sig_rx.set_channel_estimate(channel.clone());
        let sig_wave = Signal::from_parts(
            cre[signal_start..signal_start + 80].to_vec(),
            cim[signal_start..signal_start + 80].to_vec(),
            fs,
        );
        let sig_bits = sig_rx.receive(&sig_wave, 18)?;
        let (rate, length) =
            wlan_packet::parse_signal_field(&sig_bits).ok_or(WlanRxError::InvalidSignalField)?;

        // 6. DATA field at the announced rate.
        let data_start = signal_start + 80;
        let mut data_rx =
            ReferenceReceiver::new(wlan_packet::data_params(rate))?.with_pilot_tracking(true);
        data_rx.set_channel_estimate(channel);
        let data_wave =
            Signal::from_parts(cre[data_start..].to_vec(), cim[data_start..].to_vec(), fs);
        let n_bits = 16 + 8 * length;
        let bits = data_rx.receive(&data_wave, n_bits)?;
        let psdu = pack_msb_first(&bits[16..]);

        Ok(WlanPacket {
            psdu,
            rate,
            cfo_hz: coarse_cfo + fine_cfo,
            ltf_start,
        })
    }
}

/// Finds the offset `d` maximizing the normalized correlation with
/// `reference` at both `d` and `d + repeat` (the LTF transmits the long
/// symbol twice). Reads the haystack from split re/im slices;
/// bit-identical to the same search over interleaved samples.
fn best_double_correlation(
    hay_re: &[f64],
    hay_im: &[f64],
    reference: &[Complex64],
    repeat: usize,
) -> Option<usize> {
    let n = reference.len();
    let len = hay_re.len().min(hay_im.len());
    if len < n + repeat {
        return None;
    }
    let at = |i: usize| Complex64::new(hay_re[i], hay_im[i]);
    let ref_energy: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
    let corr_at = |d: usize| -> f64 {
        let seg_energy: f64 = (d..d + n).map(|i| at(i).norm_sqr()).sum();
        if seg_energy < 1e-30 {
            return 0.0;
        }
        let dot: Complex64 = (d..d + n)
            .zip(reference)
            .map(|(i, b)| at(i) * b.conj())
            .sum();
        dot.norm_sqr() / (seg_energy * ref_energy)
    };
    let mut best = None;
    let mut best_metric = 0.2; // threshold: reject noise-only waveforms
    for d in 0..len - n - repeat {
        let m = corr_at(d) + corr_at(d + repeat);
        if m > best_metric {
            best_metric = m;
            best = Some(d);
        }
    }
    best
}

/// Per-carrier LS channel estimate from the two averaged LTF bodies,
/// gathered from split re/im slices (only the 64-point FFT buffer is
/// complex). Bit-identical to averaging interleaved samples.
fn ltf_channel_estimate(re: &[f64], im: &[f64], ltf_start: usize) -> ChannelEstimate {
    let fft = Fft::new(64);
    let mut avg = vec![Complex64::ZERO; 64];
    for rep in 0..2 {
        let body = ltf_start + rep * 64;
        for (k, a) in avg.iter_mut().enumerate() {
            *a += Complex64::new(re[body + k], im[body + k]).scale(0.5);
        }
    }
    fft.forward(&mut avg);
    // The TX rendered the LTF with scale 64/√52 before its IFFT (1/64):
    // forward FFT returns cell·64/√52, so normalize by √52/64.
    let scale = 52f64.sqrt() / 64.0;
    let received: Vec<(i32, Complex64)> = ieee80211a::ltf_sequence()
        .iter()
        .map(|&(k, _)| {
            let bin = if k >= 0 {
                k as usize
            } else {
                (64 + k) as usize
            };
            (k, avg[bin].scale(scale))
        })
        .collect();
    ChannelEstimate::from_reference(&received, &ieee80211a::ltf_sequence())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_standards::ieee80211a::WlanRate;
    use ofdm_standards::wlan_packet::{build_ppdu, Ppdu};

    fn psdu(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 5) as u8).collect()
    }

    fn check_roundtrip(ppdu: &Ppdu, received: Signal) {
        let rx = WlanPacketReceiver::new();
        let packet = rx.receive(&received).expect("packet decodes");
        assert_eq!(packet.rate, ppdu.rate);
        assert_eq!(packet.psdu.len(), ppdu.psdu_len);
        assert_eq!(packet.psdu, psdu(ppdu.psdu_len));
    }

    #[test]
    fn clean_packet_all_rates() {
        for rate in [WlanRate::Mbps6, WlanRate::Mbps24, WlanRate::Mbps54] {
            let ppdu = build_ppdu(rate, &psdu(80));
            check_roundtrip(&ppdu, ppdu.waveform.clone());
        }
    }

    #[test]
    fn packet_with_cfo_decodes() {
        let ppdu = build_ppdu(WlanRate::Mbps12, &psdu(60));
        let fs = ppdu.waveform.sample_rate();
        for cfo in [-80e3, 12e3, 150e3] {
            // Applying a +cfo shift is correcting a −cfo one; stay on the
            // split layout instead of materializing samples().
            let (re, im) = ppdu.waveform.parts();
            let (sre, sim) = crate::sync::correct_cfo_parts(re, im, -cfo, fs);
            let rx = WlanPacketReceiver::new();
            let packet = rx
                .receive(&Signal::from_parts(sre, sim, fs))
                .unwrap_or_else(|e| panic!("cfo {cfo}: {e}"));
            assert_eq!(packet.psdu, psdu(60), "cfo {cfo}");
            assert!(
                (packet.cfo_hz - cfo).abs() < 2e3,
                "estimated {}",
                packet.cfo_hz
            );
        }
    }

    #[test]
    fn packet_with_delay_and_channel_decodes() {
        use rfsim::prelude::*;
        let ppdu = build_ppdu(WlanRate::Mbps24, &psdu(100));
        let fs = ppdu.waveform.sample_rate();
        // Leading dead air + a two-ray channel + mild noise.
        let (re, im) = ppdu.waveform.parts();
        let mut padded = vec![Complex64::ZERO; 133];
        padded.extend(re.iter().zip(im).map(|(&r, &i)| Complex64::new(r, i)));
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::from_samples(padded, fs));
        let ch = g.add(MultipathChannel::two_ray(3, 0.3));
        let noise = g.add(AwgnChannel::from_snr_db(25.0, 8));
        g.chain(&[src, ch, noise]).expect("wiring");
        g.run().expect("runs");
        let received = g.output(noise).expect("ran").clone();

        let rx = WlanPacketReceiver::new();
        let packet = rx.receive(&received).expect("decodes through channel");
        assert_eq!(packet.psdu, psdu(100));
        // Timing found the delayed LTF (133 pad + 160 STF + 32 CP ≈ 325).
        assert!(
            (packet.ltf_start as i64 - 325).unsigned_abs() < 4,
            "ltf at {}",
            packet.ltf_start
        );
    }

    #[test]
    fn split_acquisition_bit_identical_to_interleaved_reference() {
        // The receive() pipeline runs on the Signal's split storage; this
        // re-derives every acquisition quantity with the *interleaved*
        // implementations (the old path) and demands exact agreement.
        let ppdu = build_ppdu(WlanRate::Mbps24, &psdu(64));
        let fs = ppdu.waveform.sample_rate();
        let cfo = 40e3;
        let (re, im) = ppdu.waveform.parts();
        let (sre, sim) = crate::sync::correct_cfo_parts(re, im, -cfo, fs);
        let samples: Vec<Complex64> = sre
            .iter()
            .zip(&sim)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();

        // Interleaved reference pipeline, step for step.
        let coarse_at = crate::sync::find_frame_start(&samples, 16).unwrap();
        assert_eq!(
            Some(coarse_at),
            crate::sync::find_frame_start_parts(&sre, &sim, 16)
        );
        let coarse_cfo = crate::sync::estimate_cfo(&samples, coarse_at, 16, fs).unwrap();
        assert_eq!(
            Some(coarse_cfo),
            crate::sync::estimate_cfo_parts(&sre, &sim, coarse_at, 16, fs)
        );
        let corrected = crate::sync::correct_cfo(&samples, coarse_cfo, fs);
        let (cre, cim) = crate::sync::correct_cfo_parts(&sre, &sim, coarse_cfo, fs);
        for (n, z) in corrected.iter().enumerate() {
            assert!(z.re == cre[n] && z.im == cim[n], "sample {n} differs");
        }
        // Timing search over the split layout matches a straightforward
        // interleaved double-correlation.
        let ltf = ofdm_standards::ieee80211a::long_training_field();
        let reference = &ltf[32..96];
        let split_start = best_double_correlation(&cre, &cim, reference, 64).unwrap();
        let interleaved_start = {
            let n = reference.len();
            let ref_energy: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
            let corr_at = |d: usize| -> f64 {
                let seg = &corrected[d..d + n];
                let seg_energy: f64 = seg.iter().map(|z| z.norm_sqr()).sum();
                if seg_energy < 1e-30 {
                    return 0.0;
                }
                let dot: Complex64 = seg.iter().zip(reference).map(|(a, b)| *a * b.conj()).sum();
                dot.norm_sqr() / (seg_energy * ref_energy)
            };
            let mut best = None;
            let mut best_metric = 0.2;
            for d in 0..corrected.len() - n - 64 {
                let m = corr_at(d) + corr_at(d + 64);
                if m > best_metric {
                    best_metric = m;
                    best = Some(d);
                }
            }
            best.unwrap()
        };
        assert_eq!(split_start, interleaved_start);

        // And the end-to-end decode still recovers the payload with an
        // accurate total CFO estimate.
        let packet = WlanPacketReceiver::new()
            .receive(&Signal::from_parts(sre, sim, fs))
            .expect("decodes");
        assert_eq!(packet.psdu, psdu(64));
        assert!((packet.cfo_hz - cfo).abs() < 2e3);
    }

    #[test]
    fn noise_only_rejected() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let noise: Vec<Complex64> = (0..2000)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let rx = WlanPacketReceiver::new();
        let err = rx.receive(&Signal::new(noise, 20e6)).unwrap_err();
        assert!(
            matches!(
                err,
                WlanRxError::NoPreamble | WlanRxError::InvalidSignalField
            ),
            "{err}"
        );
    }

    #[test]
    fn too_short_rejected() {
        let rx = WlanPacketReceiver::new();
        let err = rx
            .receive(&Signal::new(vec![Complex64::ONE; 100], 20e6))
            .unwrap_err();
        assert_eq!(err, WlanRxError::NoPreamble);
    }

    #[test]
    fn error_display() {
        for e in [
            WlanRxError::NoPreamble,
            WlanRxError::InvalidSignalField,
            WlanRxError::Field(RxError::BadConfig("x".into())),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Synchronization: Schmidl–Cox timing metric and CP/periodicity-based
//! carrier-frequency-offset estimation.
//!
//! Used by the impairment experiments, where the receiver must find the
//! frame start and undo the LO offset that `rfsim`'s front-end models
//! introduce.

use ofdm_dsp::Complex64;
use std::f64::consts::TAU;

/// The Schmidl–Cox timing metric `M(d) = |P(d)|² / R(d)²` for a signal
/// containing a training symbol with two identical halves of length
/// `half_len` (the 802.11a LTF halves, or any repeated preamble).
///
/// Returns the metric for every candidate offset `d` (length
/// `signal.len() − 2·half_len`, empty if the signal is shorter).
pub fn schmidl_cox_metric(signal: &[Complex64], half_len: usize) -> Vec<f64> {
    if signal.len() < 2 * half_len || half_len == 0 {
        return Vec::new();
    }
    let n = signal.len() - 2 * half_len;
    let mut out = Vec::with_capacity(n);
    // Sliding correlation, updated incrementally for O(N) total cost.
    let mut p = Complex64::ZERO;
    let mut r = 0.0f64;
    for m in 0..half_len {
        p += signal[m].conj() * signal[m + half_len];
        r += signal[m + half_len].norm_sqr();
    }
    for d in 0..n {
        out.push(if r > 1e-30 {
            p.norm_sqr() / (r * r)
        } else {
            0.0
        });
        // Slide the window by one.
        p -= signal[d].conj() * signal[d + half_len];
        p += signal[d + half_len].conj() * signal[d + 2 * half_len];
        r -= signal[d + half_len].norm_sqr();
        r += signal[d + 2 * half_len].norm_sqr();
    }
    out
}

/// Finds the offset maximizing the Schmidl–Cox metric; `None` for signals
/// shorter than one training symbol.
pub fn find_frame_start(signal: &[Complex64], half_len: usize) -> Option<usize> {
    let metric = schmidl_cox_metric(signal, half_len);
    metric
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("metric is finite"))
        .map(|(d, _)| d)
}

/// Estimates a fractional carrier-frequency offset from a repeated
/// training region: two identical halves of `half_len` samples starting at
/// `offset`. Returns the CFO in Hz given the sample rate.
///
/// The unambiguous range is `±sample_rate / (2·half_len)`.
pub fn estimate_cfo(
    signal: &[Complex64],
    offset: usize,
    half_len: usize,
    sample_rate: f64,
) -> Option<f64> {
    if offset + 2 * half_len > signal.len() || half_len == 0 {
        return None;
    }
    let mut p = Complex64::ZERO;
    for m in 0..half_len {
        p += signal[offset + m].conj() * signal[offset + m + half_len];
    }
    Some(p.arg() / (TAU * half_len as f64) * sample_rate)
}

/// Applies a frequency shift of `-cfo_hz` (i.e. corrects a measured CFO).
pub fn correct_cfo(signal: &[Complex64], cfo_hz: f64, sample_rate: f64) -> Vec<Complex64> {
    signal
        .iter()
        .enumerate()
        .map(|(n, &z)| z * Complex64::cis(-TAU * cfo_hz * n as f64 / sample_rate))
        .collect()
}

/// Split-slice variant of [`schmidl_cox_metric`]: reads the signal from
/// separate re/im slices (the `rfsim::Signal` structure-of-arrays layout)
/// so receivers on the hot path never materialize a `Vec<Complex64>` view
/// of the whole waveform. Bit-identical to the interleaved entry point.
pub fn schmidl_cox_metric_parts(re: &[f64], im: &[f64], half_len: usize) -> Vec<f64> {
    let len = re.len().min(im.len());
    let at = |i: usize| Complex64::new(re[i], im[i]);
    if len < 2 * half_len || half_len == 0 {
        return Vec::new();
    }
    let n = len - 2 * half_len;
    let mut out = Vec::with_capacity(n);
    let mut p = Complex64::ZERO;
    let mut r = 0.0f64;
    for m in 0..half_len {
        p += at(m).conj() * at(m + half_len);
        r += at(m + half_len).norm_sqr();
    }
    for d in 0..n {
        out.push(if r > 1e-30 {
            p.norm_sqr() / (r * r)
        } else {
            0.0
        });
        p -= at(d).conj() * at(d + half_len);
        p += at(d + half_len).conj() * at(d + 2 * half_len);
        r -= at(d + half_len).norm_sqr();
        r += at(d + 2 * half_len).norm_sqr();
    }
    out
}

/// Split-slice variant of [`find_frame_start`]; bit-identical to the
/// interleaved entry point.
pub fn find_frame_start_parts(re: &[f64], im: &[f64], half_len: usize) -> Option<usize> {
    let metric = schmidl_cox_metric_parts(re, im, half_len);
    metric
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("metric is finite"))
        .map(|(d, _)| d)
}

/// Split-slice variant of [`estimate_cfo`]; bit-identical to the
/// interleaved entry point.
pub fn estimate_cfo_parts(
    re: &[f64],
    im: &[f64],
    offset: usize,
    half_len: usize,
    sample_rate: f64,
) -> Option<f64> {
    let len = re.len().min(im.len());
    if offset + 2 * half_len > len || half_len == 0 {
        return None;
    }
    let at = |i: usize| Complex64::new(re[i], im[i]);
    let mut p = Complex64::ZERO;
    for m in 0..half_len {
        p += at(offset + m).conj() * at(offset + m + half_len);
    }
    Some(p.arg() / (TAU * half_len as f64) * sample_rate)
}

/// Split-slice variant of [`correct_cfo`]: corrects a measured CFO,
/// producing split re/im vectors. Element-wise bit-identical to the
/// interleaved entry point.
pub fn correct_cfo_parts(
    re: &[f64],
    im: &[f64],
    cfo_hz: f64,
    sample_rate: f64,
) -> (Vec<f64>, Vec<f64>) {
    let len = re.len().min(im.len());
    let mut out_re = Vec::with_capacity(len);
    let mut out_im = Vec::with_capacity(len);
    for n in 0..len {
        let z =
            Complex64::new(re[n], im[n]) * Complex64::cis(-TAU * cfo_hz * n as f64 / sample_rate);
        out_re.push(z.re);
        out_im.push(z.im);
    }
    (out_re, out_im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_dsp::Complex64;

    /// A noise-ish aperiodic run followed by a symbol with repeated halves.
    fn test_signal(start: usize, half: usize) -> Vec<Complex64> {
        let mut v: Vec<Complex64> = (0..start)
            .map(|i| Complex64::cis((i * i) as f64 * 0.13 + i as f64 * 1.7))
            .collect();
        let half_seq: Vec<Complex64> = (0..half)
            .map(|i| Complex64::cis(i as f64 * 0.9 + (i * i) as f64 * 0.05))
            .collect();
        v.extend_from_slice(&half_seq);
        v.extend_from_slice(&half_seq);
        // Aperiodic tail.
        v.extend((0..40).map(|i| Complex64::cis(i as f64 * 2.1 + (i * i) as f64 * 0.21)));
        v
    }

    #[test]
    fn metric_peaks_at_training_symbol() {
        let sig = test_signal(100, 32);
        let found = find_frame_start(&sig, 32).unwrap();
        assert!(
            (found as i64 - 100).unsigned_abs() <= 2,
            "found {found}, expected ≈100"
        );
        let metric = schmidl_cox_metric(&sig, 32);
        assert!(metric[found] > 0.9, "peak metric {}", metric[found]);
    }

    #[test]
    fn metric_empty_for_short_signal() {
        assert!(schmidl_cox_metric(&[Complex64::ONE; 10], 8).is_empty());
        assert!(find_frame_start(&[Complex64::ONE; 10], 8).is_none());
        assert!(schmidl_cox_metric(&[], 0).is_empty());
    }

    #[test]
    fn cfo_estimated_and_corrected() {
        let fs = 20e6;
        let cfo = 50e3; // within ±fs/(2·64) = ±156 kHz
        let clean = test_signal(0, 64);
        let shifted: Vec<Complex64> = clean
            .iter()
            .enumerate()
            .map(|(n, &z)| z * Complex64::cis(TAU * cfo * n as f64 / fs))
            .collect();
        let est = estimate_cfo(&shifted, 0, 64, fs).unwrap();
        assert!((est - cfo).abs() < 100.0, "estimate {est}");
        let fixed = correct_cfo(&shifted, est, fs);
        // After correction the two halves match again.
        for m in 0..64 {
            assert!((fixed[m] - fixed[m + 64]).abs() < 1e-6);
        }
    }

    #[test]
    fn cfo_zero_for_clean_signal() {
        let sig = test_signal(0, 48);
        let est = estimate_cfo(&sig, 0, 48, 1e6).unwrap();
        assert!(est.abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn cfo_out_of_bounds_none() {
        assert!(estimate_cfo(&[Complex64::ONE; 10], 0, 8, 1.0).is_none());
        assert!(estimate_cfo(&[Complex64::ONE; 10], 0, 0, 1.0).is_none());
    }

    #[test]
    fn parts_variants_bit_identical_to_interleaved() {
        let fs = 20e6;
        for (start, half, cfo) in [(100, 32, 0.0), (0, 64, 50e3), (37, 16, -12e3)] {
            let clean = test_signal(start, half);
            let shifted: Vec<Complex64> = clean
                .iter()
                .enumerate()
                .map(|(n, &z)| z * Complex64::cis(TAU * cfo * n as f64 / fs))
                .collect();
            let re: Vec<f64> = shifted.iter().map(|z| z.re).collect();
            let im: Vec<f64> = shifted.iter().map(|z| z.im).collect();

            assert_eq!(
                schmidl_cox_metric(&shifted, half),
                schmidl_cox_metric_parts(&re, &im, half),
                "metric ({start},{half},{cfo})"
            );
            assert_eq!(
                find_frame_start(&shifted, half),
                find_frame_start_parts(&re, &im, half)
            );
            let a = estimate_cfo(&shifted, start, half, fs);
            let b = estimate_cfo_parts(&re, &im, start, half, fs);
            assert_eq!(a, b, "cfo estimate must be bit-identical");
            let est = a.unwrap();
            let fixed = correct_cfo(&shifted, est, fs);
            let (fre, fim) = correct_cfo_parts(&re, &im, est, fs);
            for (n, z) in fixed.iter().enumerate() {
                assert!(z.re == fre[n] && z.im == fim[n], "sample {n} differs");
            }
        }
        // Degenerate inputs agree too.
        assert!(schmidl_cox_metric_parts(&[1.0; 10], &[0.0; 10], 8).is_empty());
        assert!(find_frame_start_parts(&[1.0; 10], &[0.0; 10], 8).is_none());
        assert!(estimate_cfo_parts(&[1.0; 10], &[0.0; 10], 0, 8, 1.0).is_none());
        assert!(estimate_cfo_parts(&[1.0; 10], &[0.0; 10], 0, 0, 1.0).is_none());
    }

    #[test]
    fn works_on_80211a_ltf() {
        // Real 802.11a long training field: halves of 64 samples repeat.
        let ltf = ofdm_standards::ieee80211a::long_training_field();
        // Skip the 32-sample CP: offset 32, halves 64.
        let est = estimate_cfo(&ltf, 32, 64, 20e6).unwrap();
        assert!(est.abs() < 1.0);
        let start = find_frame_start(&ltf, 64).unwrap();
        // Any offset within the CP keeps the two halves identical; the
        // metric plateaus there.
        assert!(start <= 32, "start {start}");
    }
}

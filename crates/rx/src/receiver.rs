//! The full reference receiver: waveform → payload bits.
//!
//! Inverts the Mother Model chain stage by stage — preamble skip, guard
//! strip, FFT, (optional) equalization, differential decode, hard
//! demapping, deinterleaving, Viterbi, Reed–Solomon, descrambling — for
//! any parameter set the transmitter accepts. Used by E1 (reconfiguration
//! proof: BER = 0 loopback over all ten standards) and E6 (impairment
//! sweeps).

use crate::demod::OfdmDemodulator;
use crate::eq::{equalize, ChannelEstimate};
use crate::fec::ViterbiDecoder;
use ofdm_core::fec::rs::RsError;
use ofdm_core::fec::ReedSolomon;
use ofdm_core::framing::preamble_len;
use ofdm_core::interleave::Interleaver;
use ofdm_core::params::OfdmParams;
use ofdm_core::scramble::Scrambler;
use ofdm_core::symbol::SymbolModulator;
use ofdm_dsp::bits::{pack_msb_first, unpack_msb_first};
use ofdm_dsp::Complex64;
use rfsim::Signal;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Receiver failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RxError {
    /// The waveform is shorter than preamble + required data symbols.
    SignalTooShort {
        /// Samples available.
        got: usize,
        /// Samples needed.
        needed: usize,
    },
    /// The outer Reed–Solomon code could not correct a block.
    Uncorrectable(RsError),
    /// The parameter set failed validation.
    BadConfig(String),
}

impl fmt::Display for RxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RxError::SignalTooShort { got, needed } => {
                write!(f, "waveform has {got} samples but {needed} are needed")
            }
            RxError::Uncorrectable(e) => write!(f, "outer code failed: {e}"),
            RxError::BadConfig(msg) => write!(f, "invalid receiver configuration: {msg}"),
        }
    }
}

impl Error for RxError {}

impl From<RsError> for RxError {
    fn from(e: RsError) -> Self {
        RxError::Uncorrectable(e)
    }
}

/// A matched receiver for one Mother Model parameter set.
pub struct ReferenceReceiver {
    params: OfdmParams,
    demod: OfdmDemodulator,
    preamble_samples: usize,
    viterbi: Option<ViterbiDecoder>,
    rs: Option<ReedSolomon>,
    interleaver: Interleaver,
    /// When set, cells are equalized before demapping.
    channel: Option<ChannelEstimate>,
    /// Pilot-based common-phase-error correction per symbol.
    pilot_tracking: bool,
    /// Carrier-frequency-offset estimate in Hz, derotated before demod.
    cfo_hz: f64,
}

impl ReferenceReceiver {
    /// Builds a receiver matched to `params`.
    ///
    /// # Errors
    ///
    /// [`RxError::BadConfig`] if the parameter set is invalid.
    pub fn new(params: OfdmParams) -> Result<Self, RxError> {
        params
            .validate()
            .map_err(|e| RxError::BadConfig(e.to_string()))?;
        let modulator = SymbolModulator::new(
            params.map.fft_size(),
            params.guard,
            params.taper_len,
            params.map.is_hermitian(),
        )
        .map_err(|e| RxError::BadConfig(e.to_string()))?;
        let preamble_samples = preamble_len(&params.preamble, &modulator);
        let viterbi = params.conv_code.clone().map(ViterbiDecoder::new);
        let rs = params.rs_outer.map(|spec| ReedSolomon::new(spec.n, spec.k));
        let interleaver = Interleaver::new(params.interleaver.clone())
            .map_err(|e| RxError::BadConfig(e.to_string()))?;
        Ok(ReferenceReceiver {
            demod: OfdmDemodulator::new(params.clone()),
            params,
            preamble_samples,
            viterbi,
            rs,
            interleaver,
            channel: None,
            pilot_tracking: false,
            cfo_hz: 0.0,
        })
    }

    /// Builder: enables per-symbol common-phase-error correction from the
    /// pilot cells (essential under residual CFO or LO phase noise; a
    /// no-op for pilotless configurations).
    pub fn with_pilot_tracking(mut self, on: bool) -> Self {
        self.pilot_tracking = on;
        self
    }

    /// Builder: installs a carrier-frequency-offset estimate (Hz). The
    /// whole waveform is derotated by `e^{-j2πΔf·n/fs}` before
    /// demodulation, cancelling a [`rfsim::CfoChannel`] with the same
    /// offset (up to the pilot-tracked residual).
    pub fn with_cfo_compensation(mut self, freq_hz: f64) -> Self {
        self.cfo_hz = freq_hz;
        self
    }

    /// Installs or updates the CFO estimate (Hz); `0.0` disables the
    /// derotation pass.
    pub fn set_cfo_estimate(&mut self, freq_hz: f64) {
        self.cfo_hz = freq_hz;
    }

    /// The currently installed CFO estimate in Hz.
    pub fn cfo_estimate(&self) -> f64 {
        self.cfo_hz
    }

    /// Installs a channel estimate applied (one-tap) before demapping.
    pub fn set_channel_estimate(&mut self, est: ChannelEstimate) {
        self.channel = Some(est);
    }

    /// Removes any installed channel estimate.
    pub fn clear_channel_estimate(&mut self) {
        self.channel = None;
    }

    /// Samples the frame's preamble occupies.
    pub fn preamble_samples(&self) -> usize {
        self.preamble_samples
    }

    /// The parameter set.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Computes the coded-bit count the transmitter produces for a payload
    /// of `payload_bits` (mirror of `MotherModel::encode_payload` sizing).
    pub fn coded_len(&self, payload_bits: usize) -> usize {
        let mut bits = payload_bits;
        if let Some(rs) = &self.rs {
            let bytes = bits.div_ceil(8);
            let blocks = bytes.div_ceil(rs.k());
            bits = blocks * rs.n() * 8;
        }
        if let Some(v) = &self.viterbi {
            let spec = v.spec();
            let raw = (bits + spec.constraint as usize - 1) * spec.polynomials.len();
            bits = if spec.puncture.pattern.is_empty() {
                raw
            } else {
                let period = spec.puncture.pattern.len();
                let kept: usize = spec.puncture.pattern.iter().filter(|&&b| b).count();
                let full_periods = raw / period;
                let rem = raw % period;
                let rem_kept = spec.puncture.pattern[..rem].iter().filter(|&&b| b).count();
                full_periods * kept + rem_kept
            };
        }
        bits
    }

    /// Demodulates and decodes one frame back to `payload_bits` payload
    /// bits.
    ///
    /// # Errors
    ///
    /// * [`RxError::SignalTooShort`] when the waveform cannot hold the
    ///   required symbols.
    /// * [`RxError::Uncorrectable`] when the outer code fails.
    pub fn receive(&mut self, signal: &Signal, payload_bits: usize) -> Result<Vec<u8>, RxError> {
        // Hot path runs on the Signal's native split re/im layout — no
        // whole-frame Vec<Complex64> materialization (ROADMAP item 1
        // follow-on). A CFO estimate is the one case that still needs an
        // owned copy: the derotation must not mutate the caller's signal.
        let (sig_re, sig_im) = signal.parts();
        let derotated: Option<(Vec<f64>, Vec<f64>)> = if self.cfo_hz != 0.0 {
            let fs = signal.sample_rate();
            let mut re = sig_re.to_vec();
            let mut im = sig_im.to_vec();
            for (n, (r, i)) in re.iter_mut().zip(im.iter_mut()).enumerate() {
                let phase = -std::f64::consts::TAU * self.cfo_hz * n as f64 / fs;
                let (sin, cos) = phase.sin_cos();
                let (xr, xi) = (*r, *i);
                *r = xr * cos - xi * sin;
                *i = xr * sin + xi * cos;
            }
            Some((re, im))
        } else {
            None
        };
        let (re, im): (&[f64], &[f64]) = match &derotated {
            Some((r, i)) => (r, i),
            None => (sig_re, sig_im),
        };
        let total = signal.len();
        let coded_len = self.coded_len(payload_bits);
        let padded_len = match self.interleaver.spec().block_len() {
            Some(block) => coded_len.div_ceil(block) * block,
            None => coded_len,
        };

        // Differential reference: demodulate the *received* phase-reference
        // preamble symbol. Dividing by received (not transmitted) cells
        // makes any static channel cancel in the differential ratio — the
        // property differential systems exist for.
        let mut diff_ref: HashMap<i32, Complex64> = HashMap::new();
        if self.params.differential {
            let sym_total = self.demod.symbol_len();
            let mut element_offset = 0usize;
            for element in &self.params.preamble {
                use ofdm_core::framing::PreambleElement;
                match element {
                    PreambleElement::Null { len } => element_offset += len,
                    PreambleElement::TimeDomain(s) => element_offset += s.len(),
                    PreambleElement::FreqDomain { cells } => {
                        let carriers: Vec<i32> = cells.iter().map(|c| c.0).collect();
                        let received = self
                            .demod
                            .demodulate_carriers_parts(re, im, element_offset, &carriers)
                            .ok_or(RxError::SignalTooShort {
                                got: total,
                                needed: element_offset + sym_total,
                            })?;
                        for (k, v) in received {
                            diff_ref.insert(k, v);
                        }
                        element_offset += sym_total;
                    }
                }
            }
        }

        // Collect hard bits symbol by symbol.
        let sym_len = self.demod.symbol_len();
        let mut bits: Vec<u8> = Vec::with_capacity(padded_len);
        let mut offset = self.preamble_samples;
        let mut symbol_index = 0usize;
        while bits.len() < padded_len {
            let cells = self
                .demod
                .demodulate_at_parts(re, im, offset, symbol_index)
                .ok_or(RxError::SignalTooShort {
                    got: total,
                    needed: offset + sym_len,
                })?;
            let mut cells = match &self.channel {
                Some(est) => equalize(&cells, est),
                None => cells,
            };
            if self.pilot_tracking {
                let expected = self.demod.pilot_cells(symbol_index);
                let mut acc = Complex64::ZERO;
                for &(k, want) in &expected {
                    if let Some(&(_, got)) = cells.iter().find(|c| c.0 == k) {
                        acc += got * want.conj();
                    }
                }
                if acc.abs() > 1e-12 {
                    let derotate = Complex64::cis(-acc.arg());
                    for c in cells.iter_mut() {
                        c.1 *= derotate;
                    }
                }
            }
            let data_carriers = self.demod.data_carriers(symbol_index);
            let all_data = self.params.map.data_carriers();
            for &k in &data_carriers {
                let idx = all_data.binary_search(&k).expect("carrier from map");
                let modulation = self.params.modulation.modulation_at(idx);
                let mut value = cells
                    .iter()
                    .find(|c| c.0 == k)
                    .expect("demodulator returns every carrier")
                    .1;
                if self.params.differential {
                    let prev = diff_ref.get(&k).copied().unwrap_or(Complex64::ONE);
                    let decided = value;
                    value *= prev.inv();
                    diff_ref.insert(k, decided);
                }
                bits.extend(modulation.demap_hard(value));
            }
            offset += sym_len;
            symbol_index += 1;
            if data_carriers.is_empty() {
                break;
            }
        }
        bits.truncate(padded_len);

        // Undo interleaving, inner code, outer code, scrambling.
        let mut bits = self.interleaver.deinterleave(&bits);
        bits.truncate(coded_len);
        if let Some(v) = &self.viterbi {
            let pre_conv = self.pre_conv_len(payload_bits);
            bits = v.decode_terminated(&bits, pre_conv);
        }
        if let Some(rs) = &self.rs {
            let bytes = pack_msb_first(&bits);
            let mut decoded = Vec::with_capacity(bytes.len() / rs.n() * rs.k());
            for block in bytes.chunks(rs.n()) {
                if block.len() == rs.n() {
                    decoded.extend(rs.decode(block)?);
                }
            }
            bits = unpack_msb_first(&decoded);
        }
        if let Some(spec) = &self.params.scrambler {
            let mut scr = Scrambler::new(spec.clone());
            bits = scr.scramble(&bits);
        }
        bits.truncate(payload_bits);
        Ok(bits)
    }

    /// Bit count entering the convolutional encoder (after scrambling and
    /// RS) for a given payload size.
    fn pre_conv_len(&self, payload_bits: usize) -> usize {
        let mut bits = payload_bits;
        if let Some(rs) = &self.rs {
            let bytes = bits.div_ceil(8);
            let blocks = bytes.div_ceil(rs.k());
            bits = blocks * rs.n() * 8;
        }
        bits
    }
}

impl fmt::Debug for ReferenceReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReferenceReceiver")
            .field("standard", &self.params.name)
            .field("preamble_samples", &self.preamble_samples)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_core::params::presets::minimal_test_params;
    use ofdm_core::MotherModel;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 11 + 2) % 7 < 3) as u8).collect()
    }

    fn loopback(params: OfdmParams, n_bits: usize) {
        let name = params.name.clone();
        let mut tx = MotherModel::new(params.clone()).unwrap();
        let mut rx = ReferenceReceiver::new(params).unwrap();
        let sent = payload(n_bits);
        let frame = tx.transmit(&sent).unwrap();
        let got = rx.receive(frame.signal(), sent.len()).unwrap();
        assert_eq!(got, sent, "{name}");
    }

    #[test]
    fn minimal_loopback() {
        loopback(minimal_test_params(), 100);
    }

    #[test]
    fn loopback_with_scrambler() {
        let mut p = minimal_test_params();
        p.scrambler = Some(ofdm_core::scramble::ScramblerSpec::ieee80211());
        loopback(p, 77);
    }

    #[test]
    fn loopback_with_conv_code() {
        let mut p = minimal_test_params();
        p.conv_code = Some(ofdm_core::fec::ConvSpec::k7_rate_half());
        loopback(p, 90);
    }

    #[test]
    fn loopback_with_punctured_code() {
        let mut p = minimal_test_params();
        p.conv_code = Some(ofdm_core::fec::ConvSpec::k7_rate_three_quarters());
        loopback(p, 120);
    }

    #[test]
    fn loopback_with_rs() {
        let mut p = minimal_test_params();
        p.rs_outer = Some(ofdm_core::params::RsOuterSpec { n: 20, k: 12 });
        loopback(p, 96);
    }

    #[test]
    fn loopback_full_chain() {
        let mut p = minimal_test_params();
        p.scrambler = Some(ofdm_core::scramble::ScramblerSpec::dvb());
        p.rs_outer = Some(ofdm_core::params::RsOuterSpec { n: 20, k: 12 });
        p.conv_code = Some(ofdm_core::fec::ConvSpec::k7_rate_two_thirds());
        p.interleaver = ofdm_core::interleave::InterleaverSpec::BlockRowCol { rows: 4, cols: 6 };
        loopback(p, 96);
    }

    #[test]
    fn coded_len_matches_tx() {
        for (rs, cc) in [
            (None, None),
            (Some(ofdm_core::params::RsOuterSpec { n: 20, k: 12 }), None),
            (
                None,
                Some(ofdm_core::fec::ConvSpec::k7_rate_three_quarters()),
            ),
            (
                Some(ofdm_core::params::RsOuterSpec { n: 20, k: 12 }),
                Some(ofdm_core::fec::ConvSpec::k7_rate_half()),
            ),
        ] {
            let mut p = minimal_test_params();
            p.rs_outer = rs;
            p.conv_code = cc;
            let mut tx = MotherModel::new(p.clone()).unwrap();
            let rx = ReferenceReceiver::new(p).unwrap();
            for n in [8usize, 33, 96, 200] {
                let sent = payload(n);
                let coded = tx.encode_payload(&sent);
                // encode_payload includes interleaver padding; coded_len is
                // the pre-padding size.
                assert!(coded.len() >= rx.coded_len(n), "n={n}");
                let unpadded = rx.coded_len(n);
                assert_eq!(
                    unpadded,
                    coded.len(), // no interleaver in these configs
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn too_short_signal_detected() {
        let p = minimal_test_params();
        let mut rx = ReferenceReceiver::new(p).unwrap();
        let sig = Signal::new(vec![Complex64::ZERO; 10], 1e6);
        let err = rx.receive(&sig, 48).unwrap_err();
        assert!(matches!(err, RxError::SignalTooShort { .. }));
    }

    #[test]
    fn error_display() {
        let e = RxError::SignalTooShort { got: 1, needed: 2 };
        assert!(!e.to_string().is_empty());
        let e2: RxError = RsError::TooManyErrors.into();
        assert!(matches!(e2, RxError::Uncorrectable(_)));
        assert!(!RxError::BadConfig("x".into()).to_string().is_empty());
    }

    #[test]
    fn cfo_compensation_cancels_cfo_channel() {
        use rfsim::{Block, CfoChannel};
        let p = minimal_test_params();
        let mut tx = MotherModel::new(p.clone()).unwrap();
        let sent = payload(100);
        let frame = tx.transmit(&sent).unwrap();
        // A CFO large enough to scramble the constellation uncompensated:
        // 20% of the subcarrier spacing walks the common phase ~72°/symbol.
        let df = 0.2 * p.sample_rate / 64.0;
        let mut ch = CfoChannel::new(df);
        let impaired = ch.process(std::slice::from_ref(frame.signal())).unwrap();
        let mut rx = ReferenceReceiver::new(p.clone())
            .unwrap()
            .with_cfo_compensation(df);
        assert_eq!(rx.cfo_estimate(), df);
        let got = rx.receive(&impaired, sent.len()).unwrap();
        assert_eq!(got, sent, "exact CFO estimate must cancel the channel");
        // Without compensation the same waveform decodes wrong.
        let mut bare = ReferenceReceiver::new(p).unwrap();
        let bad = bare.receive(&impaired, sent.len()).unwrap();
        assert_ne!(bad, sent, "uncompensated CFO should corrupt the payload");
        // set_cfo_estimate(0.0) turns the pass back off.
        rx.set_cfo_estimate(0.0);
        let clean = rx.receive(frame.signal(), sent.len()).unwrap();
        assert_eq!(clean, sent);
    }

    #[test]
    fn survives_small_noise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut p = minimal_test_params();
        p.conv_code = Some(ofdm_core::fec::ConvSpec::k7_rate_half());
        let mut tx = MotherModel::new(p.clone()).unwrap();
        let mut rx = ReferenceReceiver::new(p).unwrap();
        let sent = payload(100);
        let frame = tx.transmit(&sent).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // Perturb on the split layout directly — no interleaved copy.
        let mut noisy = frame.signal().clone();
        let (re, im) = noisy.parts_mut();
        for n in 0..re.len() {
            re[n] += rng.gen_range(-0.05..0.05);
            im[n] += rng.gen_range(-0.05..0.05);
        }
        let got = rx.receive(&noisy, sent.len()).unwrap();
        assert_eq!(got, sent);
    }
}

//! # Reference OFDM receivers
//!
//! Verification substrate for the Mother Model: demodulators, channel
//! estimation, equalization and FEC decoding sufficient to close a
//! bit-exact loopback over any of the ten standard presets, plus
//! synchronization utilities (Schmidl–Cox, CP-based CFO estimation) for
//! the impairment experiments.
//!
//! These receivers are deliberately *reference-grade*, not product-grade:
//! they lean on knowledge of the transmit parameter set (as the paper's
//! executable-specification methodology intends) and expose every
//! intermediate (cells, hard bits, estimates) for instrumentation.
//!
//! # Example
//!
//! ```
//! use ofdm_core::{params::presets, MotherModel};
//! use ofdm_rx::receiver::ReferenceReceiver;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = presets::minimal_test_params();
//! let mut tx = MotherModel::new(params.clone())?;
//! let payload: Vec<u8> = (0..48).map(|i| (i % 2) as u8).collect();
//! let frame = tx.transmit(&payload)?;
//!
//! let mut rx = ReferenceReceiver::new(params)?;
//! let decoded = rx.receive(frame.signal(), payload.len())?;
//! assert_eq!(decoded, payload);
//! # Ok(())
//! # }
//! ```

pub mod demod;
pub mod eq;
pub mod fec;
pub mod loading;
pub mod metrics;
pub mod receiver;
pub mod sync;
pub mod wlan;

pub use receiver::{ReferenceReceiver, RxError};

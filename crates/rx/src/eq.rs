//! Channel estimation and one-tap equalization.
//!
//! OFDM's defining property: after the FFT, a dispersive channel (shorter
//! than the guard) is a single complex gain per subcarrier. Least-squares
//! estimates at known cells (pilots or a reference symbol) plus linear
//! interpolation across carriers give the classic frequency-domain
//! equalizer.

use ofdm_dsp::Complex64;
use std::collections::BTreeMap;

/// A per-carrier channel estimate.
#[derive(Debug, Clone, Default)]
pub struct ChannelEstimate {
    /// Carrier → complex channel gain.
    gains: BTreeMap<i32, Complex64>,
}

impl ChannelEstimate {
    /// An empty (identity) estimate.
    pub fn new() -> Self {
        ChannelEstimate::default()
    }

    /// Least-squares estimation: `H(k) = received(k) / reference(k)` at
    /// each known cell. Reference cells with (near-)zero magnitude are
    /// skipped.
    pub fn from_reference(received: &[(i32, Complex64)], reference: &[(i32, Complex64)]) -> Self {
        let ref_map: BTreeMap<i32, Complex64> = reference.iter().copied().collect();
        let mut gains = BTreeMap::new();
        for &(k, r) in received {
            if let Some(&x) = ref_map.get(&k) {
                if x.abs() > 1e-12 {
                    gains.insert(k, r * x.inv());
                }
            }
        }
        ChannelEstimate { gains }
    }

    /// Number of carriers with direct estimates.
    pub fn len(&self) -> usize {
        self.gains.len()
    }

    /// Returns `true` if no estimates exist (identity channel assumed).
    pub fn is_empty(&self) -> bool {
        self.gains.is_empty()
    }

    /// The estimated gain at carrier `k`: exact where known, linearly
    /// interpolated between the nearest known carriers, nearest-neighbour
    /// extrapolated at the band edges, identity if empty.
    pub fn gain_at(&self, k: i32) -> Complex64 {
        if let Some(&g) = self.gains.get(&k) {
            return g;
        }
        let below = self.gains.range(..k).next_back();
        let above = self.gains.range(k..).next();
        match (below, above) {
            (Some((&ka, &ga)), Some((&kb, &gb))) => {
                let t = (k - ka) as f64 / (kb - ka) as f64;
                ga.scale(1.0 - t) + gb.scale(t)
            }
            (Some((_, &g)), None) | (None, Some((_, &g))) => g,
            (None, None) => Complex64::ONE,
        }
    }

    /// Merges in newer estimates (e.g. accumulating scattered pilots over
    /// several symbols), overwriting duplicates.
    pub fn merge(&mut self, other: &ChannelEstimate) {
        for (&k, &g) in &other.gains {
            self.gains.insert(k, g);
        }
    }
}

/// Accumulates least-squares channel observations over many symbols —
/// `H(k) = Σ Y(k)·X*(k) / Σ |X(k)|²` — driving estimation noise down by
/// the number of observations (training uses tens of symbols; a
/// single-symbol estimate caps post-equalization SNR at the per-symbol
/// SNR).
#[derive(Debug, Clone, Default)]
pub struct ChannelEstimator {
    num: BTreeMap<i32, Complex64>,
    den: BTreeMap<i32, f64>,
}

impl ChannelEstimator {
    /// An empty accumulator.
    pub fn new() -> Self {
        ChannelEstimator::default()
    }

    /// Adds one symbol's received cells against its known reference.
    pub fn accumulate(&mut self, received: &[(i32, Complex64)], reference: &[(i32, Complex64)]) {
        let ref_map: BTreeMap<i32, Complex64> = reference.iter().copied().collect();
        for &(k, r) in received {
            if let Some(&x) = ref_map.get(&k) {
                *self.num.entry(k).or_insert(Complex64::ZERO) += r * x.conj();
                *self.den.entry(k).or_insert(0.0) += x.norm_sqr();
            }
        }
    }

    /// Number of carriers with observations.
    pub fn len(&self) -> usize {
        self.num.len()
    }

    /// Returns `true` if nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.num.is_empty()
    }

    /// Finalizes the averaged estimate.
    pub fn estimate(&self) -> ChannelEstimate {
        let mut gains = BTreeMap::new();
        for (&k, &n) in &self.num {
            let d = self.den[&k];
            if d > 1e-12 {
                gains.insert(k, n / d);
            }
        }
        ChannelEstimate { gains }
    }
}

/// Equalizes received cells with a channel estimate: `X̂(k) = Y(k)/H(k)`.
///
/// Gains below `1e-9` in magnitude are left unequalized (deep-null
/// carriers would otherwise blow up).
pub fn equalize(cells: &[(i32, Complex64)], est: &ChannelEstimate) -> Vec<(i32, Complex64)> {
    cells
        .iter()
        .map(|&(k, y)| {
            let h = est.gain_at(k);
            if h.abs() > 1e-9 {
                (k, y * h.inv())
            } else {
                (k, y)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(pairs: &[(i32, f64, f64)]) -> Vec<(i32, Complex64)> {
        pairs
            .iter()
            .map(|&(k, re, im)| (k, Complex64::new(re, im)))
            .collect()
    }

    #[test]
    fn ls_estimate_exact_on_known_cells() {
        let reference = cells(&[(1, 1.0, 0.0), (5, 0.0, 1.0)]);
        let h = Complex64::new(0.5, 0.5);
        let received: Vec<(i32, Complex64)> = reference.iter().map(|&(k, x)| (k, x * h)).collect();
        let est = ChannelEstimate::from_reference(&received, &reference);
        assert_eq!(est.len(), 2);
        assert!((est.gain_at(1) - h).abs() < 1e-12);
        assert!((est.gain_at(5) - h).abs() < 1e-12);
    }

    #[test]
    fn interpolation_between_pilots() {
        let reference = cells(&[(0, 1.0, 0.0), (10, 1.0, 0.0)]);
        let received = cells(&[(0, 1.0, 0.0), (10, 3.0, 0.0)]);
        let est = ChannelEstimate::from_reference(&received, &reference);
        // Halfway: gain 2.0.
        assert!((est.gain_at(5) - Complex64::new(2.0, 0.0)).abs() < 1e-12);
        // Edge extrapolation: nearest neighbour.
        assert!((est.gain_at(-5) - Complex64::ONE).abs() < 1e-12);
        assert!((est.gain_at(15) - Complex64::new(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_estimate_is_identity() {
        let est = ChannelEstimate::new();
        assert!(est.is_empty());
        assert_eq!(est.gain_at(7), Complex64::ONE);
    }

    #[test]
    fn zero_reference_cells_skipped() {
        let reference = cells(&[(1, 0.0, 0.0), (2, 1.0, 0.0)]);
        let received = cells(&[(1, 5.0, 0.0), (2, 2.0, 0.0)]);
        let est = ChannelEstimate::from_reference(&received, &reference);
        assert_eq!(est.len(), 1);
    }

    #[test]
    fn equalization_inverts_channel() {
        let reference = cells(&[(1, 1.0, 0.0), (2, 0.0, 1.0), (3, -1.0, 0.0)]);
        let h = Complex64::from_polar(2.0, 0.7);
        let received: Vec<(i32, Complex64)> = reference.iter().map(|&(k, x)| (k, x * h)).collect();
        let est = ChannelEstimate::from_reference(&received, &reference);
        let eq = equalize(&received, &est);
        for (e, r) in eq.iter().zip(&reference) {
            assert!((e.1 - r.1).abs() < 1e-12);
        }
    }

    #[test]
    fn deep_null_left_alone() {
        let mut est = ChannelEstimate::new();
        est.merge(&ChannelEstimate::from_reference(
            &cells(&[(1, 0.0, 0.0)]),
            &cells(&[(1, 1.0, 0.0)]),
        ));
        let y = cells(&[(1, 0.3, 0.0)]);
        let eq = equalize(&y, &est);
        assert_eq!(eq[0].1, y[0].1);
    }

    #[test]
    fn estimator_averages_down_noise() {
        // A fixed channel observed under alternating ± noise: averaging
        // two observations cancels it exactly; a single one would not.
        let h = Complex64::new(0.8, -0.3);
        let reference = cells(&[(4, 1.0, 0.0)]);
        let noisy =
            |sign: f64| -> Vec<(i32, Complex64)> { vec![(4, h + Complex64::new(sign * 0.2, 0.0))] };
        let mut est = ChannelEstimator::new();
        assert!(est.is_empty());
        est.accumulate(&noisy(1.0), &reference);
        est.accumulate(&noisy(-1.0), &reference);
        assert_eq!(est.len(), 1);
        let e = est.estimate();
        assert!((e.gain_at(4) - h).abs() < 1e-12);
    }

    #[test]
    fn estimator_weights_by_reference_energy() {
        // LS weighting: a strong reference cell dominates the average.
        let mut est = ChannelEstimator::new();
        est.accumulate(
            &cells(&[(1, 2.0, 0.0)]),
            &cells(&[(1, 2.0, 0.0)]), // H = 1, weight 4
        );
        est.accumulate(
            &cells(&[(1, 3.0, 0.0)]),
            &cells(&[(1, 1.0, 0.0)]), // H = 3, weight 1
        );
        let e = est.estimate();
        // (2·2 + 3·1)/(4 + 1) = 1.4.
        assert!((e.gain_at(1).re - 1.4).abs() < 1e-12);
    }

    #[test]
    fn merge_overwrites_and_extends() {
        let mut a =
            ChannelEstimate::from_reference(&cells(&[(1, 2.0, 0.0)]), &cells(&[(1, 1.0, 0.0)]));
        let b = ChannelEstimate::from_reference(
            &cells(&[(1, 4.0, 0.0), (3, 6.0, 0.0)]),
            &cells(&[(1, 1.0, 0.0), (3, 1.0, 0.0)]),
        );
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.gain_at(1) - Complex64::new(4.0, 0.0)).abs() < 1e-12);
    }
}

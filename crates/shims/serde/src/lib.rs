//! Offline stand-in for `serde`.
//!
//! Provides marker traits named `Serialize`/`Deserialize` and (behind the
//! `derive` feature) re-exports the no-op derives, so parameter structs can
//! keep their serde annotations without network access to crates.io. No
//! actual serialization machinery exists — none is used in this workspace.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

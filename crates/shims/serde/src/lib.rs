//! Offline stand-in for `serde`.
//!
//! Provides marker traits named `Serialize`/`Deserialize` and (behind the
//! `derive` feature) re-exports the no-op derives, so parameter structs can
//! keep their serde annotations without network access to crates.io. The
//! [`json`] module additionally carries a minimal JSON value type with a
//! writer and parser — the subset the telemetry layer needs to emit and
//! verify `BENCH_*.json` artifacts.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub mod json {
    //! A minimal JSON document model: build with [`Value`], serialize with
    //! `Display`, read back with [`parse`].
    //!
    //! Object member order is preserved (members are a `Vec`, not a map),
    //! so emitted documents are deterministic and diff-friendly.

    use std::fmt;

    /// A JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null` (also produced when serializing non-finite numbers).
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number; stored as `f64` like JavaScript's number type.
        Number(f64),
        /// A string.
        String(String),
        /// An ordered array.
        Array(Vec<Value>),
        /// An object with insertion-ordered members.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Object member lookup; `None` for non-objects or missing keys.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(x) => Some(*x),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The members, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(members) => Some(members),
                _ => None,
            }
        }

        /// The boolean value, if this is a boolean.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as an unsigned integer, if this is a number that is
        /// finite, non-negative and integral.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(x)
                    if x.is_finite() && *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 =>
                {
                    Some(*x as u64)
                }
                _ => None,
            }
        }
    }

    impl From<f64> for Value {
        fn from(x: f64) -> Self {
            Value::Number(x)
        }
    }
    impl From<u64> for Value {
        fn from(x: u64) -> Self {
            Value::Number(x as f64)
        }
    }
    impl From<usize> for Value {
        fn from(x: usize) -> Self {
            Value::Number(x as f64)
        }
    }
    impl From<bool> for Value {
        fn from(b: bool) -> Self {
            Value::Bool(b)
        }
    }
    impl From<&str> for Value {
        fn from(s: &str) -> Self {
            Value::String(s.to_owned())
        }
    }
    impl From<String> for Value {
        fn from(s: String) -> Self {
            Value::String(s)
        }
    }

    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        f.write_str("\"")?;
        for c in s.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }

    impl fmt::Display for Value {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Value::Null => f.write_str("null"),
                Value::Bool(b) => write!(f, "{b}"),
                Value::Number(x) => {
                    if !x.is_finite() {
                        f.write_str("null")
                    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
                        write!(f, "{}", *x as i64)
                    } else {
                        // Rust's shortest-roundtrip Display is valid JSON
                        // for finite values.
                        write!(f, "{x}")
                    }
                }
                Value::String(s) => write_escaped(f, s),
                Value::Array(items) => {
                    f.write_str("[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str("]")
                }
                Value::Object(members) => {
                    f.write_str("{")?;
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write_escaped(f, k)?;
                        f.write_str(":")?;
                        write!(f, "{v}")?;
                    }
                    f.write_str("}")
                }
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
            Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(parse_value(bytes, pos)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut members = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(members));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = parse_string(bytes, pos)?;
                    skip_ws(bytes, pos);
                    expect(bytes, pos, b':')?;
                    members.push((key, parse_value(bytes, pos)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                    }
                }
            }
            Some(_) => parse_number(bytes, pos),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (JSON strings are UTF-8).
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn typed_accessors_reject_mismatched_variants() {
            assert_eq!(Value::Bool(true).as_bool(), Some(true));
            assert_eq!(Value::Bool(false).as_bool(), Some(false));
            assert_eq!(Value::from(1.0).as_bool(), None);
            assert_eq!(Value::from("true").as_bool(), None);

            assert_eq!(Value::from(42u64).as_u64(), Some(42));
            assert_eq!(Value::from(0.0).as_u64(), Some(0));
            assert_eq!(Value::from(1.5).as_u64(), None);
            assert_eq!(Value::from(-3.0).as_u64(), None);
            assert_eq!(Value::from(f64::NAN).as_u64(), None);
            assert_eq!(Value::from(f64::INFINITY).as_u64(), None);
            assert_eq!(Value::from("7").as_u64(), None);
        }

        #[test]
        fn roundtrips_nested_document() {
            let doc = Value::Object(vec![
                ("name".into(), Value::from("bench \"v1\"\n")),
                ("count".into(), Value::from(3u64)),
                ("ratio".into(), Value::from(1.25)),
                ("ok".into(), Value::from(true)),
                ("none".into(), Value::Null),
                (
                    "items".into(),
                    Value::Array(vec![Value::from(1u64), Value::from(2.5)]),
                ),
            ]);
            let text = doc.to_string();
            let back = parse(&text).expect("parses");
            assert_eq!(back, doc);
            assert_eq!(back.get("count").and_then(Value::as_f64), Some(3.0));
            assert_eq!(
                back.get("name").and_then(Value::as_str),
                Some("bench \"v1\"\n")
            );
            assert_eq!(
                back.get("items")
                    .and_then(Value::as_array)
                    .map(<[Value]>::len),
                Some(2)
            );
            assert_eq!(back.get("missing"), None);
        }

        #[test]
        fn integers_serialize_without_fraction() {
            assert_eq!(Value::from(42u64).to_string(), "42");
            assert_eq!(Value::from(1.5).to_string(), "1.5");
            assert_eq!(Value::Number(f64::NAN).to_string(), "null");
        }

        #[test]
        fn parse_rejects_garbage() {
            assert!(parse("{\"a\":}").is_err());
            assert!(parse("[1,2").is_err());
            assert!(parse("true false").is_err());
            assert!(parse("").is_err());
            assert!(parse("\"unterminated").is_err());
        }

        #[test]
        fn parses_escapes_and_unicode() {
            let v = parse("\"a\\n\\t\\u0041β\"").expect("parses");
            assert_eq!(v.as_str(), Some("a\n\tAβ"));
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the exact API subset the simulator uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, but the workspace
//! only relies on *reproducibility under a fixed seed*, never on specific
//! values, so the substitution is behavior-preserving for every test and
//! experiment in the repository.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the subset of `rand::SeedableRng`
/// used by this workspace).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Raw 64-bit generator output (the subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers (the subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable with a standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 2];
        for _ in 0..100 {
            let v = rng.gen_range(0..=1u8);
            seen[v as usize] = true;
        }
        assert!(seen[0] && seen[1]);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let p = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

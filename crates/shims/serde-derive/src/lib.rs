//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatible annotation — nothing serializes through serde at run
//! time (the one "serde" test hand-rolls its JSON). These derives therefore
//! expand to nothing, keeping the annotations compiling without network
//! access to the real crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

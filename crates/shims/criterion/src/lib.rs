//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides a
//! compact wall-clock benchmarking harness over the criterion API subset the
//! workspace's benches use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! adaptively sized batches until a fixed measurement budget elapses; the
//! per-iteration mean and (when a [`Throughput`] is set) the element/byte
//! rate are printed as one line per benchmark:
//!
//! ```text
//! fft_engine/radix2/256    time: 1.234 µs/iter   thrpt: 207.5 Melem/s
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_secs: f64,
}

/// Target wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

impl Bencher {
    /// Times `f`, recording the mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
        }
        // Measure in geometrically growing batches until the budget is
        // spent, so very fast bodies are timed over many calls.
        let mut batch: u64 = 1;
        let mut total_iters: u64 = 0;
        let mut total_time = Duration::ZERO;
        while total_time < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_time += start.elapsed();
            total_iters += batch;
            if batch < 1 << 20 {
                batch *= 2;
            }
        }
        self.mean_secs = total_time.as_secs_f64() / total_iters as f64;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.2} {unit}/s")
    }
}

fn report(path: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("   thrpt: {}", fmt_rate(n as f64 / mean_secs, "elem"))
        }
        Some(Throughput::Bytes(n)) => {
            format!("   thrpt: {}", fmt_rate(n as f64 / mean_secs, "B"))
        }
        None => String::new(),
    };
    println!("{path:<48} time: {}/iter{thrpt}", fmt_time(mean_secs));
}

/// The top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b);
        report(&id.id, b.mean_secs, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the harness
    /// sizes its measurement by wall-clock budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_secs,
            self.throughput,
        );
        self
    }

    /// Times one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_secs,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-5).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with(" s"));
        assert!(fmt_rate(3.0e9, "elem").starts_with("3.00 G"));
        assert!(fmt_rate(5.0e4, "B").starts_with("50.00 K"));
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("fft", 256).id, "fft/256");
        assert_eq!(BenchmarkId::from_parameter("dab_2048").id, "dab_2048");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }
}

//! Offline stand-in for `proptest`.
//!
//! Re-implements the slice of the proptest API this workspace's property
//! tests use — the [`proptest!`] macro, range and [`any`] strategies,
//! [`collection::vec`], `prop_assert!`/`prop_assert_eq!` and
//! [`ProptestConfig`] — on top of a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! * cases are derived deterministically from the test's module path and
//!   name, so every run explores the same inputs (CI-stable);
//! * no shrinking — the failing case index and formatted message are
//!   reported instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number-of-cases configuration, mirroring `proptest::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test identifier and case index.
    pub fn from_case(test_id: &str, case: u32) -> Self {
        // FNV-1a over the identifier, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a useful dynamic range.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for a type: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len)`: a vector strategy with `len` either a fixed
    /// `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::from_case(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = result {
                    ::std::panic!(
                        "property `{}` failed at case {}: {}",
                        ::std::stringify!($name), case, message
                    );
                }
            }
        }
    )*};
}

/// The `proptest!` test-definition macro: each `fn name(arg in strategy)`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ::std::default::Default::default(); $($rest)* }
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, x in -1.0f64..1.0, b in 1u8..=4) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vectors_respect_size(v in vec(any::<u8>(), 2..5), w in vec(any::<u32>(), 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_case("t", 0);
        let mut b = crate::TestRng::from_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}

//! A wire-level fault-injection proxy for chaos-testing the service.
//!
//! [`ChaosProxy`] sits between a client and `rfsim-server`, forwarding
//! frames while injecting *seeded, deterministic* transport faults — the
//! transport-layer sibling of [`rfsim::fault`]'s seeded impairment
//! injectors. It is frame-aware (it reassembles each length-prefixed
//! frame before deciding its fate) so every fault lands at a precise,
//! reproducible point:
//!
//! - **Reset** — both sockets are torn down before the frame is
//!   forwarded: the peer sees a cut at a frame boundary.
//! - **Torn frame** — the length prefix and *half* the payload are
//!   forwarded, then both sockets are torn down: the peer sees
//!   [`WireError::Truncated`] mid-payload.
//! - **Delay** — the frame is held for a configured duration before
//!   forwarding (tail-latency and heartbeat-pressure testing).
//! - **Shredded writes** — the frame is forwarded one byte per `write`
//!   call with a flush after each, the worst legal TCP fragmentation.
//!
//! Each pump direction of each connection derives its own RNG from
//! [`ChaosConfig::seed`], so equal seeds produce equal fault schedules
//! against equal traffic. [`ChaosConfig::max_faults`] caps the total
//! faults injected across the proxy's lifetime, guaranteeing that a
//! retrying client eventually gets a clean connection — which is what
//! lets chaos tests demand byte-identical completion rather than mere
//! survival.
//!
//! [`WireError::Truncated`]: crate::wire::WireError::Truncated

use crate::wire;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// SplitMix64 — the seed-spreading permutation used to derive
/// per-connection RNG streams and deterministic backoff jitter.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What the proxy injects and how often. Rates are per-frame
/// probabilities in `[0, 1]`, rolled in a fixed order (reset, tear,
/// delay, shred) so the RNG stream — and therefore the fault schedule —
/// is identical for identical seeds and traffic.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the per-connection fault RNGs.
    pub seed: u64,
    /// Per-frame probability of a connection reset before forwarding.
    pub reset_rate: f64,
    /// Per-frame probability of forwarding a torn (half) frame and then
    /// resetting.
    pub tear_rate: f64,
    /// Per-frame probability of delaying the frame by [`ChaosConfig::delay`].
    pub delay_rate: f64,
    /// How long a delayed frame is held.
    pub delay: Duration,
    /// Per-frame probability of forwarding in one-byte writes.
    pub shred_rate: f64,
    /// Total faults the proxy may inject over its lifetime; once spent,
    /// every frame is forwarded cleanly. `u32::MAX` = unbounded.
    pub max_faults: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            reset_rate: 0.0,
            tear_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(5),
            shred_rate: 0.0,
            max_faults: u32::MAX,
        }
    }
}

/// A snapshot of what the proxy has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Client connections accepted and bridged upstream.
    pub connections: u64,
    /// Frames read off either side (whether forwarded cleanly or not).
    pub frames: u64,
    /// Connections reset before a frame was forwarded.
    pub reset: u64,
    /// Frames forwarded half-way and then cut.
    pub torn: u64,
    /// Frames held for the configured delay.
    pub delayed: u64,
    /// Frames forwarded one byte per write.
    pub shredded: u64,
}

impl ChaosStats {
    /// Total faults injected (resets + tears + delays + shreds).
    pub fn faults(&self) -> u64 {
        self.reset + self.torn + self.delayed + self.shredded
    }
}

struct ProxyInner {
    stop: AtomicBool,
    faults_left: AtomicU32,
    connections: AtomicU64,
    frames: AtomicU64,
    reset: AtomicU64,
    torn: AtomicU64,
    delayed: AtomicU64,
    shredded: AtomicU64,
    /// Clones of every bridged socket, for teardown at [`ChaosProxy::stop`].
    socks: Mutex<Vec<TcpStream>>,
    pumps: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ProxyInner {
    /// Consumes one unit of fault budget; `false` once exhausted.
    fn take_fault(&self) -> bool {
        self.faults_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

/// A running fault-injection proxy. Listens on an ephemeral local port
/// and bridges every accepted connection to the configured upstream.
pub struct ChaosProxy {
    addr: SocketAddr,
    inner: Arc<ProxyInner>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts bridging connections to `upstream`
    /// under `config`'s fault regime.
    ///
    /// # Errors
    ///
    /// Socket errors from binding the listen address.
    pub fn start(upstream: &str, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ProxyInner {
            stop: AtomicBool::new(false),
            faults_left: AtomicU32::new(config.max_faults),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            reset: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            shredded: AtomicU64::new(0),
            socks: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            let upstream = upstream.to_owned();
            std::thread::spawn(move || accept_loop(&listener, &upstream, &config, &inner))
        };
        Ok(ChaosProxy {
            addr,
            inner,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the proxy has injected so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.inner.connections.load(Ordering::SeqCst),
            frames: self.inner.frames.load(Ordering::SeqCst),
            reset: self.inner.reset.load(Ordering::SeqCst),
            torn: self.inner.torn.load(Ordering::SeqCst),
            delayed: self.inner.delayed.load(Ordering::SeqCst),
            shredded: self.inner.shredded.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting, tears down every bridged connection, and joins
    /// all pump threads. Returns the final stats.
    pub fn stop(mut self) -> ChaosStats {
        self.wind_down();
        self.stats()
    }

    fn wind_down(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for sock in self
            .inner
            .socks
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let _ = sock.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let pumps = std::mem::take(
            &mut *self
                .inner
                .pumps
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for handle in pumps {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.wind_down();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &str,
    config: &ChaosConfig,
    inner: &Arc<ProxyInner>,
) {
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue; // upstream down: drop the client on the floor
                };
                let conn = inner.connections.fetch_add(1, Ordering::SeqCst);
                {
                    let mut socks = inner.socks.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Ok(c) = client.try_clone() {
                        socks.push(c);
                    }
                    if let Ok(s) = server.try_clone() {
                        socks.push(s);
                    }
                }
                let mut handles = Vec::with_capacity(2);
                for dir in 0..2u64 {
                    let (Ok(src), Ok(dst)) = (client.try_clone(), server.try_clone()) else {
                        continue;
                    };
                    // dir 0: client → server; dir 1: server → client.
                    let (src, dst) = if dir == 0 { (src, dst) } else { (dst, src) };
                    let rng = StdRng::seed_from_u64(splitmix64(
                        config.seed ^ (conn << 1 | dir).wrapping_mul(0xA24B_AED4_963E_E407),
                    ));
                    let config = config.clone();
                    let inner = Arc::clone(inner);
                    handles.push(std::thread::spawn(move || {
                        pump(src, dst, rng, &config, &inner);
                    }));
                }
                inner
                    .pumps
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(handles);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Forwards frames from `src` to `dst`, rolling the fault dice once per
/// frame per fault kind (fixed order keeps the RNG stream stable). Ends
/// by shutting both sockets so the sibling pump unblocks too.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    mut rng: StdRng,
    cfg: &ChaosConfig,
    inner: &ProxyInner,
) {
    while let Ok(payload) = wire::read_frame(&mut src) {
        inner.frames.fetch_add(1, Ordering::SeqCst);
        // Roll every fault kind unconditionally: the draw sequence must
        // not depend on which faults have budget left.
        let roll_reset = rng.gen_range(0.0..1.0);
        let roll_tear = rng.gen_range(0.0..1.0);
        let roll_delay = rng.gen_range(0.0..1.0);
        let roll_shred = rng.gen_range(0.0..1.0);
        if roll_reset < cfg.reset_rate && inner.take_fault() {
            inner.reset.fetch_add(1, Ordering::SeqCst);
            break;
        }
        let len = payload.len() as u32; // read_frame already enforced MAX_FRAME
        if roll_tear < cfg.tear_rate && inner.take_fault() {
            inner.torn.fetch_add(1, Ordering::SeqCst);
            let cut = payload.len() / 2;
            let _ = dst.write_all(&len.to_be_bytes());
            let _ = dst.write_all(&payload[..cut]);
            let _ = dst.flush();
            break;
        }
        if roll_delay < cfg.delay_rate && inner.take_fault() {
            inner.delayed.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(cfg.delay);
        }
        let forwarded = if roll_shred < cfg.shred_rate && inner.take_fault() {
            inner.shredded.fetch_add(1, Ordering::SeqCst);
            shred(&mut dst, &len.to_be_bytes(), &payload)
        } else {
            dst.write_all(&len.to_be_bytes())
                .and_then(|()| dst.write_all(&payload))
                .and_then(|()| dst.flush())
                .is_ok()
        };
        if !forwarded {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Writes header + payload one byte at a time, flushing after each byte.
fn shred(dst: &mut TcpStream, header: &[u8], payload: &[u8]) -> bool {
    for &b in header.iter().chain(payload) {
        if dst.write_all(&[b]).and_then(|()| dst.flush()).is_err() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// An echo server good enough to pump frames through: reads frames
    /// and writes each one back unchanged.
    fn echo_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections so the thread ends.
            for _ in 0..8 {
                let Ok((mut conn, _)) = listener.accept() else {
                    return;
                };
                while let Ok(frame) = wire::read_frame(&mut conn) {
                    if wire::write_frame(&mut conn, &frame).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, payload: &[u8]) -> Result<Vec<u8>, wire::WireError> {
        let mut conn = TcpStream::connect(addr).map_err(wire::WireError::Io)?;
        wire::write_frame(&mut conn, payload)?;
        wire::read_frame(&mut conn)
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let (upstream, _server) = echo_server();
        let proxy =
            ChaosProxy::start(&upstream.to_string(), ChaosConfig::default()).expect("start");
        let addr = proxy.addr();
        for n in 0..3u8 {
            let msg = vec![n; 64 + usize::from(n)];
            assert_eq!(roundtrip(addr, &msg).expect("echo"), msg);
        }
        let stats = proxy.stop();
        assert_eq!(stats.connections, 3);
        assert_eq!(stats.faults(), 0, "no faults configured, none injected");
        assert!(stats.frames >= 6, "both directions counted: {stats:?}");
    }

    #[test]
    fn reset_faults_cut_connections_then_budget_exhausts() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(
            &upstream.to_string(),
            ChaosConfig {
                reset_rate: 1.0,
                max_faults: 2,
                ..ChaosConfig::default()
            },
        )
        .expect("start");
        let addr = proxy.addr();
        // First two connections die mid-exchange (typed errors, never a
        // hang); once the budget is spent, traffic flows cleanly.
        let mut failures = 0;
        let mut clean = 0;
        for _ in 0..4 {
            match roundtrip(addr, b"ping") {
                Ok(echo) => {
                    assert_eq!(echo, b"ping");
                    clean += 1;
                }
                Err(
                    wire::WireError::Closed
                    | wire::WireError::Truncated { .. }
                    | wire::WireError::Io(_),
                ) => failures += 1,
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
        assert_eq!(failures, 2, "exactly the budgeted faults fired");
        assert_eq!(clean, 2, "post-budget traffic is clean");
        let stats = proxy.stop();
        assert_eq!(stats.reset, 2);
    }

    #[test]
    fn torn_frames_truncate_mid_payload() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(
            &upstream.to_string(),
            ChaosConfig {
                tear_rate: 1.0,
                max_faults: 1,
                ..ChaosConfig::default()
            },
        )
        .expect("start");
        let addr = proxy.addr();
        // The client's outbound frame is torn on its way to the echo
        // server: the server sees Truncated mid-payload and hangs up, so
        // the client's read ends with a typed transport error.
        let mut conn = TcpStream::connect(addr).expect("connect");
        wire::write_frame(&mut conn, &[7u8; 100]).expect("send");
        let mut sink = Vec::new();
        let n = conn.read_to_end(&mut sink);
        assert!(
            n.map(|bytes| bytes < 104).unwrap_or(true),
            "the echo never arrives whole"
        );
        let stats = proxy.stop();
        assert_eq!(stats.torn, 1);
    }

    #[test]
    fn shredded_and_delayed_frames_still_arrive_intact() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(
            &upstream.to_string(),
            ChaosConfig {
                shred_rate: 1.0,
                delay_rate: 1.0,
                delay: Duration::from_millis(2),
                ..ChaosConfig::default()
            },
        )
        .expect("start");
        let addr = proxy.addr();
        let msg = vec![0xAB; 257];
        assert_eq!(
            roundtrip(addr, &msg).expect("reassembles"),
            msg,
            "shredding and delaying corrupt nothing"
        );
        let stats = proxy.stop();
        assert!(stats.shredded >= 1 && stats.delayed >= 1, "{stats:?}");
    }

    #[test]
    fn equal_seeds_produce_equal_fault_schedules() {
        let run = |seed: u64| -> Vec<bool> {
            let (upstream, _server) = echo_server();
            let proxy = ChaosProxy::start(
                &upstream.to_string(),
                ChaosConfig {
                    seed,
                    reset_rate: 0.5,
                    ..ChaosConfig::default()
                },
            )
            .expect("start");
            let addr = proxy.addr();
            let outcomes = (0..6)
                .map(|_| roundtrip(addr, b"deterministic?").is_ok())
                .collect();
            proxy.stop();
            outcomes
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(
            run(42),
            run(43),
            "different seeds explore different schedules (with 2^-12 flake odds)"
        );
    }

    #[test]
    fn splitmix_spreads_and_is_pure() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
        let spread: std::collections::HashSet<u64> = (0..64).map(splitmix64).collect();
        assert_eq!(spread.len(), 64, "no collisions on small inputs");
    }
}

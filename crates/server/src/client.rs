//! A blocking client for the simulation server: submits jobs, rides out
//! backpressure and transport faults, and tails streamed results back
//! into a [`WaterfallReport`].
//!
//! Two layers of resilience live here:
//!
//! - **Leases** — when the server's `Welcome` carries a lease TTL, the
//!   client arms a read timeout at a third of it and lets the stateful
//!   [`wire::FrameReader`] ride the timeouts: every time a read comes up
//!   empty it sends a [`ClientMsg::Heartbeat`] and resumes decoding
//!   exactly where it left off, so long waits for results never let the
//!   lease lapse.
//! - **Recovery** — [`run_job_with_recovery`] reconnects and resubmits
//!   through transport faults under [`BackoffPolicy`]'s capped
//!   exponential backoff with deterministic jitter. Resubmits are safe
//!   because the grid's `checkpoint_label` is an idempotency key on the
//!   server: a still-running duplicate is bounced with a retry hint and
//!   a checkpointed one restores instead of recomputing — a retry can
//!   never double-run a grid.

use crate::chaos::splitmix64;
use crate::server::assemble_report;
use crate::wire::{self, ClientMsg, FrameReader, JobSpec, ServerMsg, WireError};
use ofdm_bench::waterfall::{WaterfallReport, WaterfallSpec};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Duration;

/// The server's answer to a submit.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Queued; results will stream under this job id.
    Accepted {
        /// Server-assigned job id.
        job: u64,
        /// Grid points the job decomposes into.
        points: usize,
    },
    /// Refused. A zero `retry_after_ms` marks the refusal permanent
    /// (invalid grid, corrupt checkpoint); nonzero is backpressure.
    Rejected {
        /// Why.
        reason: String,
        /// Backpressure hint in milliseconds (0 = don't retry).
        retry_after_ms: u64,
    },
}

/// Everything a finished (or abandoned) job streamed back.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job id.
    pub job: u64,
    /// Terminal status: `"complete"`, `"cancelled"`, `"deadline"`, or
    /// `"failed"`.
    pub status: String,
    /// Points the server actually computed (excludes checkpoint
    /// restores).
    pub computed: usize,
    /// Failure detail when status is `"failed"`, else empty.
    pub detail: String,
    /// Per-point `(errors, bits)` tallies, in grid-index order. The
    /// protocol streams each job's results as a strictly contiguous
    /// prefix, so `results[i]` is grid point `i`; the vector covers the
    /// whole grid exactly when the status is `"complete"`.
    pub results: Vec<(u64, u64)>,
}

impl JobOutcome {
    /// Re-aggregates the streamed tallies into the report an in-process
    /// run would produce.
    ///
    /// # Errors
    ///
    /// A message if the job did not complete (partial grids have no
    /// honest report).
    pub fn report(&self, spec: &WaterfallSpec) -> Result<WaterfallReport, String> {
        if self.status != "complete" {
            return Err(format!("job {} ended {}", self.job, self.status));
        }
        assemble_report(spec, &self.results)
    }
}

/// A connected session.
pub struct Client {
    stream: TcpStream,
    session: u64,
    /// The session lease TTL granted by the server's `Welcome`, if any.
    lease_ms: Option<u64>,
    /// When the client last sent a heartbeat; beats are due every third
    /// of the TTL regardless of how busy the inbound stream is (inbound
    /// results prove the *server* alive, not this client).
    last_beat: std::time::Instant,
    /// Stateful frame decoder, so heartbeat ticks (read timeouts) never
    /// lose partially received frames.
    reader: FrameReader,
    /// Frames read while looking for something else, served first by
    /// [`Client::next_msg`].
    pending: VecDeque<ServerMsg>,
}

impl Client {
    /// Connects and performs the hello handshake. A `Welcome` carrying a
    /// lease TTL arms the heartbeat machinery: reads time out at a third
    /// of the TTL and each timeout sends a heartbeat frame.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol error if the server's first frame is
    /// not `Welcome`.
    pub fn connect(addr: &str, name: &str) -> Result<Client, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        wire::send(
            &mut stream,
            &ClientMsg::Hello {
                client: name.to_owned(),
            }
            .to_value(),
        )?;
        match ServerMsg::from_value(&wire::recv(&mut stream)?)? {
            ServerMsg::Welcome {
                session, lease_ms, ..
            } => {
                if let Some(ttl) = lease_ms {
                    stream
                        .set_read_timeout(Some(Duration::from_millis((ttl / 3).max(5))))
                        .map_err(WireError::Io)?;
                }
                Ok(Client {
                    stream,
                    session,
                    lease_ms,
                    last_beat: std::time::Instant::now(),
                    reader: FrameReader::new(),
                    pending: VecDeque::new(),
                })
            }
            other => Err(WireError::Malformed(format!(
                "expected welcome, got {other:?}"
            ))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The lease TTL the server granted, if leases are on.
    pub fn lease_ms(&self) -> Option<u64> {
        self.lease_ms
    }

    /// Sends a standalone heartbeat frame, refreshing the lease.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn heartbeat(&mut self) -> Result<(), WireError> {
        self.last_beat = std::time::Instant::now();
        wire::send(&mut self.stream, &ClientMsg::Heartbeat.to_value())
    }

    /// The heartbeat cadence: a third of the lease TTL.
    fn beat_every(&self) -> Option<Duration> {
        self.lease_ms
            .map(|ttl| Duration::from_millis((ttl / 3).max(5)))
    }

    /// Sends a heartbeat if one is due under the lease cadence.
    fn beat_if_due(&mut self) -> Result<(), WireError> {
        if let Some(every) = self.beat_every() {
            if self.last_beat.elapsed() >= every {
                self.heartbeat()?;
            }
        }
        Ok(())
    }

    /// Sleeps `ms` milliseconds without letting the lease lapse: with a
    /// lease, the sleep is chunked and heartbeats are sent between
    /// chunks. Used while riding out backpressure hints.
    fn sleep_keeping_lease(&mut self, ms: u64) {
        match self.beat_every() {
            None => std::thread::sleep(Duration::from_millis(ms)),
            Some(every) => {
                let chunk = u64::try_from(every.as_millis()).unwrap_or(u64::MAX).max(1);
                let mut left = ms;
                while left > 0 {
                    let step = left.min(chunk);
                    std::thread::sleep(Duration::from_millis(step));
                    let _ = self.beat_if_due();
                    left -= step;
                }
            }
        }
    }

    /// Reads the next frame off the socket, heartbeating on the lease
    /// cadence whether the stream is idle (read timeouts) or busy (a
    /// flood of inbound results proves nothing about *this* end).
    fn recv_fresh(&mut self) -> Result<ServerMsg, WireError> {
        loop {
            self.beat_if_due()?;
            match self.reader.poll(&mut self.stream)? {
                Some(payload) => return ServerMsg::from_value(&wire::parse_payload(&payload)?),
                // Read timed out mid-wait; the partial frame is retained
                // and the next iteration's beat check covers liveness.
                // Without a lease there is no cadence to wait for, so
                // beat once per tick to keep the old behavior visible.
                None => {
                    if self.lease_ms.is_none() {
                        self.heartbeat()?;
                    }
                }
            }
        }
    }

    /// The next server frame — buffered frames first, then the socket.
    ///
    /// # Errors
    ///
    /// Transport errors from the wire codec.
    pub fn next_msg(&mut self) -> Result<ServerMsg, WireError> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        self.recv_fresh()
    }

    /// Submits a job and waits for the server's verdict. Result frames
    /// of other in-flight jobs seen along the way are buffered, not
    /// dropped.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Malformed`] if the server
    /// complains about the frame.
    pub fn submit(&mut self, job: &JobSpec) -> Result<SubmitOutcome, WireError> {
        wire::send(
            &mut self.stream,
            &ClientMsg::Submit { job: job.clone() }.to_value(),
        )?;
        loop {
            // Read from the socket directly: the verdict is always a
            // fresh frame, never an already-buffered one.
            match self.recv_fresh()? {
                ServerMsg::Accepted { job, points } => {
                    return Ok(SubmitOutcome::Accepted { job, points })
                }
                ServerMsg::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    return Ok(SubmitOutcome::Rejected {
                        reason,
                        retry_after_ms,
                    })
                }
                ServerMsg::Error { detail } => return Err(WireError::Malformed(detail)),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Submits, sleeping through up to `max_attempts` backpressure
    /// rejections (honoring each `retry_after_ms` hint).
    ///
    /// # Errors
    ///
    /// Transport errors; [`WireError::Malformed`] carrying the reason
    /// for permanent rejections or exhausted retries.
    pub fn submit_with_retry(
        &mut self,
        job: &JobSpec,
        max_attempts: usize,
    ) -> Result<(u64, usize), WireError> {
        let mut last_reason = String::new();
        for _ in 0..max_attempts.max(1) {
            match self.submit(job)? {
                SubmitOutcome::Accepted { job, points } => return Ok((job, points)),
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    if retry_after_ms == 0 {
                        return Err(WireError::Malformed(format!("rejected: {reason}")));
                    }
                    last_reason = reason;
                    self.sleep_keeping_lease(retry_after_ms);
                }
            }
        }
        Err(WireError::Malformed(format!(
            "rejected after retries: {last_reason}"
        )))
    }

    /// Tails one job's stream until its `Done` frame. Frames belonging
    /// to other jobs are re-buffered in arrival order.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Malformed`] if the server
    /// violates the in-order streaming contract.
    pub fn tail_job(&mut self, job_id: u64) -> Result<JobOutcome, WireError> {
        let mut results: Vec<(u64, u64)> = Vec::new();
        let mut stash: VecDeque<ServerMsg> = VecDeque::new();
        let outcome = loop {
            let msg = self.next_msg()?;
            match msg {
                ServerMsg::Result {
                    job,
                    index,
                    errors,
                    bits,
                } if job == job_id => {
                    if index != results.len() {
                        return Err(WireError::Malformed(format!(
                            "job {job_id}: result {index} arrived, expected {}",
                            results.len()
                        )));
                    }
                    results.push((errors, bits));
                }
                ServerMsg::Telemetry { job, .. } if job == job_id => {}
                ServerMsg::Done {
                    job,
                    status,
                    computed,
                    detail,
                } if job == job_id => {
                    break JobOutcome {
                        job: job_id,
                        status,
                        computed,
                        detail,
                        results,
                    };
                }
                other => stash.push_back(other),
            }
        };
        // Everything that wasn't ours goes back, order preserved.
        while let Some(msg) = stash.pop_back() {
            self.pending.push_front(msg);
        }
        Ok(outcome)
    }

    /// Submits (riding out backpressure) and tails the job to its end.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::submit_with_retry`] and
    /// [`Client::tail_job`] failures.
    pub fn run_job(&mut self, job: &JobSpec) -> Result<JobOutcome, WireError> {
        let (id, _points) = self.submit_with_retry(job, 100)?;
        self.tail_job(id)
    }

    /// Asks the server to cancel one of this session's jobs.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn cancel(&mut self, job: u64) -> Result<(), WireError> {
        wire::send(&mut self.stream, &ClientMsg::Cancel { job }.to_value())
    }

    /// Asks the server to drain gracefully and waits for the typed
    /// `Draining` acknowledgement; returns its detail line. Frames of
    /// in-flight jobs seen along the way are buffered, not dropped.
    ///
    /// # Errors
    ///
    /// Transport errors from the wire codec.
    pub fn drain(&mut self) -> Result<String, WireError> {
        wire::send(&mut self.stream, &ClientMsg::Drain.to_value())?;
        loop {
            match self.recv_fresh()? {
                ServerMsg::Draining { detail } => return Ok(detail),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Ends the session cleanly.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn bye(mut self) -> Result<(), WireError> {
        wire::send(&mut self.stream, &ClientMsg::Bye.to_value())
    }

    /// Asks the server to shut down entirely.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn shutdown_server(mut self) -> Result<(), WireError> {
        wire::send(&mut self.stream, &ClientMsg::Shutdown.to_value())
    }
}

/// Capped exponential backoff with deterministic jitter for
/// [`run_job_with_recovery`]. Attempt `n` sleeps between half and all of
/// `min(base_ms << n, cap_ms)`; the jittered half comes from
/// [`splitmix64`] over `(seed, n)`, so a given policy replays the exact
/// same schedule — chaos tests stay reproducible end to end.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// First retry's nominal delay in milliseconds.
    pub base_ms: u64,
    /// Ceiling on the nominal delay.
    pub cap_ms: u64,
    /// Connection/submission attempts before giving up (minimum 1).
    pub max_attempts: u32,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 25,
            cap_ms: 1_000,
            max_attempts: 8,
            seed: 1,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry attempt `attempt` (0-based), in ms.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let nominal = self
            .base_ms
            .max(1)
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms.max(1));
        let jitter = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let half = nominal / 2;
        half + jitter % (nominal - half + 1)
    }
}

/// True for errors worth a reconnect: the transport died (or timed out)
/// without the server ruling on the job. Protocol-level rulings —
/// permanent rejections, malformed traffic — are final.
fn is_transient(e: &WireError) -> bool {
    matches!(
        e,
        WireError::Closed
            | WireError::Truncated { .. }
            | WireError::Io(_)
            | WireError::Oversized { .. }
    )
}

/// Runs a job to completion through transport faults: connect, submit,
/// tail; on a transport error, back off per `policy` and start over with
/// a fresh connection. Safe to retry because submits are idempotent on
/// the server (keyed by the grid's `checkpoint_label`): an accepted
/// duplicate is impossible and checkpointed progress restores rather
/// than recomputing, so the merged result is byte-identical to an
/// uninterrupted run.
///
/// # Errors
///
/// The last transport error once attempts are exhausted, or the first
/// non-transient error (permanent rejection, protocol violation).
pub fn run_job_with_recovery(
    addr: &str,
    name: &str,
    job: &JobSpec,
    policy: &BackoffPolicy,
) -> Result<JobOutcome, WireError> {
    let mut last = WireError::Closed;
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt - 1)));
        }
        let mut client = match Client::connect(addr, name) {
            Ok(c) => c,
            Err(e) if is_transient(&e) => {
                last = e;
                continue;
            }
            Err(e) => return Err(e),
        };
        match client.run_job(job) {
            Ok(outcome) => {
                let _ = client.bye();
                return Ok(outcome);
            }
            Err(e) if is_transient(&e) => {
                last = e;
            }
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_at_least_half_nominal() {
        let policy = BackoffPolicy {
            base_ms: 10,
            cap_ms: 80,
            max_attempts: 8,
            seed: 99,
        };
        let a: Vec<u64> = (0..8).map(|n| policy.delay_ms(n)).collect();
        let b: Vec<u64> = (0..8).map(|n| policy.delay_ms(n)).collect();
        assert_eq!(a, b, "same policy, same schedule");
        for (n, &d) in a.iter().enumerate() {
            let nominal = (10u64 << n).min(80);
            assert!(
                d >= nominal / 2 && d <= nominal,
                "attempt {n}: {d} outside [{}, {nominal}]",
                nominal / 2
            );
        }
        let other = BackoffPolicy {
            seed: 100,
            ..policy
        };
        let c: Vec<u64> = (0..8).map(|n| other.delay_ms(n)).collect();
        assert_ne!(a, c, "different seeds jitter differently");
    }

    #[test]
    fn transient_errors_are_exactly_the_transport_ones() {
        assert!(is_transient(&WireError::Closed));
        assert!(is_transient(&WireError::Truncated { read: 3 }));
        assert!(is_transient(&WireError::Oversized { len: 9, cap: 4 }));
        assert!(is_transient(&WireError::Io(std::io::Error::other("x"))));
        assert!(
            !is_transient(&WireError::Malformed("rejected: bad grid".into())),
            "protocol rulings are final"
        );
    }
}

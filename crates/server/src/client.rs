//! A blocking client for the simulation server: submits jobs, rides out
//! backpressure, and tails streamed results back into a
//! [`WaterfallReport`].

use crate::server::assemble_report;
use crate::wire::{self, ClientMsg, JobSpec, ServerMsg, WireError};
use ofdm_bench::waterfall::{WaterfallReport, WaterfallSpec};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::Duration;

/// The server's answer to a submit.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Queued; results will stream under this job id.
    Accepted {
        /// Server-assigned job id.
        job: u64,
        /// Grid points the job decomposes into.
        points: usize,
    },
    /// Refused. A zero `retry_after_ms` marks the refusal permanent
    /// (invalid grid, corrupt checkpoint); nonzero is backpressure.
    Rejected {
        /// Why.
        reason: String,
        /// Backpressure hint in milliseconds (0 = don't retry).
        retry_after_ms: u64,
    },
}

/// Everything a finished (or abandoned) job streamed back.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job id.
    pub job: u64,
    /// Terminal status: `"complete"`, `"cancelled"`, `"deadline"`, or
    /// `"failed"`.
    pub status: String,
    /// Points the server actually computed (excludes checkpoint
    /// restores).
    pub computed: usize,
    /// Failure detail when status is `"failed"`, else empty.
    pub detail: String,
    /// Per-point `(errors, bits)` tallies, in grid-index order. The
    /// protocol streams each job's results as a strictly contiguous
    /// prefix, so `results[i]` is grid point `i`; the vector covers the
    /// whole grid exactly when the status is `"complete"`.
    pub results: Vec<(u64, u64)>,
}

impl JobOutcome {
    /// Re-aggregates the streamed tallies into the report an in-process
    /// run would produce.
    ///
    /// # Errors
    ///
    /// A message if the job did not complete (partial grids have no
    /// honest report).
    pub fn report(&self, spec: &WaterfallSpec) -> Result<WaterfallReport, String> {
        if self.status != "complete" {
            return Err(format!("job {} ended {}", self.job, self.status));
        }
        assemble_report(spec, &self.results)
    }
}

/// A connected session.
pub struct Client {
    stream: TcpStream,
    session: u64,
    /// Frames read while looking for something else, served first by
    /// [`Client::next_msg`].
    pending: VecDeque<ServerMsg>,
}

impl Client {
    /// Connects and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol error if the server's first frame is
    /// not `Welcome`.
    pub fn connect(addr: &str, name: &str) -> Result<Client, WireError> {
        let mut stream = TcpStream::connect(addr)?;
        wire::send(
            &mut stream,
            &ClientMsg::Hello {
                client: name.to_owned(),
            }
            .to_value(),
        )?;
        match ServerMsg::from_value(&wire::recv(&mut stream)?)? {
            ServerMsg::Welcome { session, .. } => Ok(Client {
                stream,
                session,
                pending: VecDeque::new(),
            }),
            other => Err(WireError::Malformed(format!(
                "expected welcome, got {other:?}"
            ))),
        }
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The next server frame — buffered frames first, then the socket.
    ///
    /// # Errors
    ///
    /// Transport errors from [`wire::recv`].
    pub fn next_msg(&mut self) -> Result<ServerMsg, WireError> {
        if let Some(msg) = self.pending.pop_front() {
            return Ok(msg);
        }
        ServerMsg::from_value(&wire::recv(&mut self.stream)?)
    }

    /// Submits a job and waits for the server's verdict. Result frames
    /// of other in-flight jobs seen along the way are buffered, not
    /// dropped.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Malformed`] if the server
    /// complains about the frame.
    pub fn submit(&mut self, job: &JobSpec) -> Result<SubmitOutcome, WireError> {
        wire::send(
            &mut self.stream,
            &ClientMsg::Submit { job: job.clone() }.to_value(),
        )?;
        loop {
            // Read from the socket directly: the verdict is always a
            // fresh frame, never an already-buffered one.
            match ServerMsg::from_value(&wire::recv(&mut self.stream)?)? {
                ServerMsg::Accepted { job, points } => {
                    return Ok(SubmitOutcome::Accepted { job, points })
                }
                ServerMsg::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    return Ok(SubmitOutcome::Rejected {
                        reason,
                        retry_after_ms,
                    })
                }
                ServerMsg::Error { detail } => return Err(WireError::Malformed(detail)),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Submits, sleeping through up to `max_attempts` backpressure
    /// rejections (honoring each `retry_after_ms` hint).
    ///
    /// # Errors
    ///
    /// Transport errors; [`WireError::Malformed`] carrying the reason
    /// for permanent rejections or exhausted retries.
    pub fn submit_with_retry(
        &mut self,
        job: &JobSpec,
        max_attempts: usize,
    ) -> Result<(u64, usize), WireError> {
        let mut last_reason = String::new();
        for _ in 0..max_attempts.max(1) {
            match self.submit(job)? {
                SubmitOutcome::Accepted { job, points } => return Ok((job, points)),
                SubmitOutcome::Rejected {
                    reason,
                    retry_after_ms,
                } => {
                    if retry_after_ms == 0 {
                        return Err(WireError::Malformed(format!("rejected: {reason}")));
                    }
                    last_reason = reason;
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
            }
        }
        Err(WireError::Malformed(format!(
            "rejected after retries: {last_reason}"
        )))
    }

    /// Tails one job's stream until its `Done` frame. Frames belonging
    /// to other jobs are re-buffered in arrival order.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`WireError::Malformed`] if the server
    /// violates the in-order streaming contract.
    pub fn tail_job(&mut self, job_id: u64) -> Result<JobOutcome, WireError> {
        let mut results: Vec<(u64, u64)> = Vec::new();
        let mut stash: VecDeque<ServerMsg> = VecDeque::new();
        let outcome = loop {
            let msg = self.next_msg()?;
            match msg {
                ServerMsg::Result {
                    job,
                    index,
                    errors,
                    bits,
                } if job == job_id => {
                    if index != results.len() {
                        return Err(WireError::Malformed(format!(
                            "job {job_id}: result {index} arrived, expected {}",
                            results.len()
                        )));
                    }
                    results.push((errors, bits));
                }
                ServerMsg::Telemetry { job, .. } if job == job_id => {}
                ServerMsg::Done {
                    job,
                    status,
                    computed,
                    detail,
                } if job == job_id => {
                    break JobOutcome {
                        job: job_id,
                        status,
                        computed,
                        detail,
                        results,
                    };
                }
                other => stash.push_back(other),
            }
        };
        // Everything that wasn't ours goes back, order preserved.
        while let Some(msg) = stash.pop_back() {
            self.pending.push_front(msg);
        }
        Ok(outcome)
    }

    /// Submits (riding out backpressure) and tails the job to its end.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::submit_with_retry`] and
    /// [`Client::tail_job`] failures.
    pub fn run_job(&mut self, job: &JobSpec) -> Result<JobOutcome, WireError> {
        let (id, _points) = self.submit_with_retry(job, 100)?;
        self.tail_job(id)
    }

    /// Asks the server to cancel one of this session's jobs.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn cancel(&mut self, job: u64) -> Result<(), WireError> {
        wire::send(&mut self.stream, &ClientMsg::Cancel { job }.to_value())
    }

    /// Ends the session cleanly.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn bye(mut self) -> Result<(), WireError> {
        wire::send(&mut self.stream, &ClientMsg::Bye.to_value())
    }

    /// Asks the server to shut down entirely.
    ///
    /// # Errors
    ///
    /// Transport errors from sending the frame.
    pub fn shutdown_server(mut self) -> Result<(), WireError> {
        wire::send(&mut self.stream, &ClientMsg::Shutdown.to_value())
    }
}

//! The simulation server: session management, fair scheduling, and the
//! worker pool.
//!
//! # Architecture
//!
//! One thread per connected client reads and dispatches its frames; a
//! fixed pool of worker threads executes waterfall grid points. All
//! coordination happens through one mutex-guarded scheduler state plus a
//! condvar — no async runtime.
//!
//! - **Fairness** — workers pick work one *grid point* at a time,
//!   round-robin across sessions (`SchedState::pick`), so a session
//!   with a thousand-point job cannot starve a session with a ten-point
//!   job: their points interleave.
//! - **Backpressure** — each session may hold at most
//!   [`ServerConfig::queue_capacity`] unfinished jobs; further submits
//!   are refused with [`ServerMsg::Rejected`] and a retry hint instead
//!   of queueing unboundedly.
//! - **Cancellation** — the server owns a root [`CancelToken`]; every
//!   session gets a child scope and every job a grandchild, so a lost
//!   connection cancels exactly that session's jobs and a server
//!   shutdown cancels everything.
//! - **Supervision** — jobs may carry a wall-clock [`Deadline`]; a
//!   session whose jobs keep failing trips a circuit breaker
//!   ([`BreakerState`]) and has new submits refused until probation.
//! - **Checkpoints** — with a checkpoint directory configured, each
//!   job's completed points persist through [`SweepCheckpoint`]; a
//!   resubmitted identical grid restores them instead of recomputing,
//!   and a corrupt checkpoint file refuses the submit loudly.
//!
//! Per job, results stream strictly in grid-index order: workers finish
//! points out of order into a reorder buffer and the contiguous prefix
//! is flushed as [`ServerMsg::Result`] frames.

use crate::wire::{self, JobSpec, ServerMsg, WireError};
use ofdm_bench::waterfall::{
    checkpoint_label, waterfall_point, WaterfallCurve, WaterfallReport, WaterfallSpec,
};
use ofdm_core::ber::BerCounter;
use rfsim::supervise::CHECKPOINT_SCHEMA;
use rfsim::{
    BreakerPolicy, BreakerState, CancelToken, CheckpointEntry, CheckpointPayload, Deadline, Lease,
    LeaseReaper, SweepCheckpoint,
};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads computing grid points (`0` = one per CPU).
    pub workers: usize,
    /// Unfinished jobs a session may hold before submits are rejected.
    pub queue_capacity: usize,
    /// The retry hint attached to backpressure rejections.
    pub retry_after_ms: u64,
    /// Where to persist per-job sweep checkpoints (`None` = in-memory
    /// only).
    pub checkpoint_dir: Option<PathBuf>,
    /// Circuit-breaker policy for sessions whose jobs keep failing.
    pub breaker: BreakerPolicy,
    /// Emit a [`ServerMsg::Telemetry`] frame every this many completed
    /// points of a job.
    pub telemetry_every: usize,
    /// Session lease TTL: a session whose client sends nothing (not even
    /// a heartbeat) for this long is reaped — its jobs cancelled and its
    /// queue capacity reclaimed. `None` disables the reaper.
    pub lease_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_capacity: 4,
            retry_after_ms: 250,
            checkpoint_dir: None,
            breaker: BreakerPolicy::new(),
            telemetry_every: 8,
            lease_ms: None,
        }
    }
}

/// What a crash-recovery scan of the checkpoint directory found at
/// startup (see [`Server::recovery`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Persisted checkpoints with a valid schema tag: an identical
    /// resubmit restores this many grids' prior progress.
    pub resumable: usize,
    /// Files that exist but do not carry the checkpoint schema — left in
    /// place so the damage surfaces as a loud submit-time rejection.
    pub corrupt: usize,
    /// Orphaned `*.tmp` files from writes interrupted by the crash,
    /// removed during the scan.
    pub cleaned_tmp: usize,
}

/// Scans a checkpoint directory after a(n un)clean shutdown: removes
/// orphaned atomic-write temp files and classifies every persisted
/// document. Restoration itself stays lazy — submits find their progress
/// through the label-derived path — so the scan only reports and cleans.
fn recovery_scan(dir: &Path) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return report;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            if std::fs::remove_file(&path).is_ok() {
                report.cleaned_tmp += 1;
            }
            continue;
        }
        if path.extension().is_some_and(|e| e == "json") {
            let tagged = std::fs::read_to_string(&path).is_ok_and(|text| {
                serde::json::parse(&text).is_ok_and(|doc| {
                    doc.get("schema").and_then(|v| v.as_str()) == Some(CHECKPOINT_SCHEMA)
                })
            });
            if tagged {
                report.resumable += 1;
            } else {
                report.corrupt += 1;
            }
        }
    }
    report
}

/// Re-aggregates a job's streamed per-point tallies into the same
/// [`WaterfallReport`] an in-process [`run_waterfall`] call yields —
/// feeding it to [`waterfall_json`] therefore reproduces the local
/// document byte for byte.
///
/// `results[i]` is grid point `i`'s `(errors, bits)` tally.
///
/// # Errors
///
/// A message if `results` does not cover the spec's full grid.
///
/// [`run_waterfall`]: ofdm_bench::waterfall::run_waterfall
/// [`waterfall_json`]: ofdm_bench::waterfall::waterfall_json
pub fn assemble_report(
    spec: &WaterfallSpec,
    results: &[(u64, u64)],
) -> Result<WaterfallReport, String> {
    if results.len() != spec.point_count() {
        return Err(format!(
            "got {} point results for a {}-point grid",
            results.len(),
            spec.point_count()
        ));
    }
    let mut curves = Vec::with_capacity(spec.standards.len());
    for (s, &standard) in spec.standards.iter().enumerate() {
        let mut points = vec![BerCounter::new(); spec.snr_db.len()];
        for (g, point) in points.iter_mut().enumerate() {
            for r in 0..spec.realizations {
                let index = (s * spec.snr_db.len() + g) * spec.realizations + r;
                let (errors, bits) = results[index];
                point.add(errors, bits);
            }
        }
        curves.push(WaterfallCurve { standard, points });
    }
    Ok(WaterfallReport { curves, resumed: 0 })
}

/// A session's outbound stream, shared between its reader thread and the
/// workers delivering its results.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

fn write_msg(writer: &SharedWriter, msg: &ServerMsg) {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    // A dead client's writes fail; its reader thread notices the
    // disconnect and tears the session down, so failures here are moot.
    let _ = wire::send(&mut *w, &msg.to_value());
}

/// Mutable per-job progress, behind the job's own mutex.
struct JobProgress {
    /// Out-of-order results awaiting their turn.
    buffer: BTreeMap<usize, (u64, u64)>,
    /// Next grid index to stream — everything below is already emitted.
    emit_cursor: usize,
    /// Points actually computed this run (excludes checkpoint restores).
    computed: usize,
    /// Terminal flag; set exactly once.
    finished: bool,
    /// On-disk progress, when the server checkpoints.
    checkpoint: Option<SweepCheckpoint>,
}

/// One submitted job.
struct JobState {
    id: u64,
    session: u64,
    spec: WaterfallSpec,
    /// The grid's identity ([`checkpoint_label`]) — the idempotency key
    /// held in [`Shared::active_labels`] while this job is live.
    label: String,
    total: usize,
    restored: HashSet<usize>,
    /// Next grid index to hand a worker (skipping restored points).
    next_dispatch: AtomicUsize,
    /// Mirror of `JobProgress::finished` readable without the job mutex,
    /// so the scheduler can skip dead jobs under the state lock alone.
    terminal: AtomicBool,
    cancel: CancelToken,
    deadline: Option<Deadline>,
    progress: Mutex<JobProgress>,
}

impl JobState {
    /// Claims the next undispatched, non-restored grid index.
    fn take_next_index(&self) -> Option<usize> {
        loop {
            let n = self.next_dispatch.fetch_add(1, Ordering::SeqCst);
            if n >= self.total {
                // Park the cursor so repeated polls don't overflow.
                self.next_dispatch.store(self.total, Ordering::SeqCst);
                return None;
            }
            if !self.restored.contains(&n) {
                return Some(n);
            }
        }
    }
}

/// One connected session.
struct SessionSlot {
    id: u64,
    queue: VecDeque<Arc<JobState>>,
    writer: SharedWriter,
    cancel: CancelToken,
    breaker: BreakerState,
    /// The session's socket, for the reaper to sever: cancelling the
    /// token alone would leave the reader thread blocked in `recv`.
    stream: Option<TcpStream>,
}

/// What a worker got out of the scheduler.
enum Picked {
    /// Compute this grid point.
    Compute(Arc<JobState>, usize),
    /// Drive this job to the given terminal status.
    Finish(Arc<JobState>, &'static str),
}

/// The scheduler state, guarded by [`Shared::state`].
struct SchedState {
    sessions: Vec<SessionSlot>,
    rr_cursor: usize,
    next_session: u64,
    next_job: u64,
}

impl SchedState {
    /// Round-robin point pick: starting at the cursor, the first session
    /// with dispatchable work wins one point and the cursor moves past
    /// it, so heavy sessions cannot starve light ones.
    fn pick(&mut self) -> Option<Picked> {
        let n = self.sessions.len();
        for k in 0..n {
            let si = (self.rr_cursor + k) % n;
            for job in &self.sessions[si].queue {
                if job.terminal.load(Ordering::SeqCst) {
                    continue;
                }
                if job.cancel.is_cancelled() {
                    self.rr_cursor = (si + 1) % n;
                    return Some(Picked::Finish(Arc::clone(job), "cancelled"));
                }
                if job.deadline.as_ref().is_some_and(Deadline::expired) {
                    self.rr_cursor = (si + 1) % n;
                    return Some(Picked::Finish(Arc::clone(job), "deadline"));
                }
                if let Some(index) = job.take_next_index() {
                    self.rr_cursor = (si + 1) % n;
                    return Some(Picked::Compute(Arc::clone(job), index));
                }
            }
        }
        None
    }

    fn slot_mut(&mut self, session: u64) -> Option<&mut SessionSlot> {
        self.sessions.iter_mut().find(|s| s.id == session)
    }
}

/// State shared by the accept loop, session readers, and workers.
struct Shared {
    config: ServerConfig,
    state: Mutex<SchedState>,
    work_ready: Condvar,
    /// Root cancellation scope; sessions and jobs are descendants.
    shutdown: CancelToken,
    /// Streams of every live connection, for unblocking readers at
    /// shutdown.
    conns: Mutex<Vec<TcpStream>>,
    /// Set once by a `drain` frame; refuses new submits while in-flight
    /// jobs run (or checkpoint) to completion.
    draining: AtomicBool,
    /// Checkpoint labels of live jobs — the idempotency registry that
    /// makes retried submits safe: a grid can never run twice at once.
    active_labels: Mutex<HashSet<String>>,
    /// Session-liveness reaper, swept periodically when leases are on.
    reaper: LeaseReaper,
}

impl Shared {
    fn new(config: ServerConfig) -> Self {
        Shared {
            config,
            state: Mutex::new(SchedState {
                sessions: Vec::new(),
                rr_cursor: 0,
                next_session: 1,
                next_job: 1,
            }),
            work_ready: Condvar::new(),
            shutdown: CancelToken::new(),
            conns: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
            active_labels: Mutex::new(HashSet::new()),
            reaper: LeaseReaper::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_labels(&self) -> std::sync::MutexGuard<'_, HashSet<String>> {
        self.active_labels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The session lease TTL, when leases are configured.
    fn lease_ttl(&self) -> Option<Duration> {
        self.config.lease_ms.map(Duration::from_millis)
    }

    /// Registers a session around an outbound writer (plus its socket,
    /// when it has one, so the reaper can sever it); returns the id and
    /// the session's lease for the reader to touch.
    fn register_session(
        &self,
        writer: SharedWriter,
        stream: Option<TcpStream>,
    ) -> (u64, Arc<Lease>) {
        let lease = Arc::new(Lease::new(self.lease_ttl().unwrap_or(Duration::MAX)));
        let cancel = self.shutdown.child();
        if self.lease_ttl().is_some() {
            self.reaper.register(Arc::clone(&lease), cancel.clone());
        }
        let mut state = self.lock_state();
        let id = state.next_session;
        state.next_session += 1;
        state.sessions.push(SessionSlot {
            id,
            queue: VecDeque::new(),
            writer,
            cancel,
            breaker: BreakerState::default(),
            stream,
        });
        (id, lease)
    }

    /// Begins a graceful drain exactly once: new submits are refused,
    /// every session hears a typed [`ServerMsg::Draining`] frame, and
    /// [`Server::run`] exits once the last in-flight job retires.
    fn begin_drain(&self, detail: &str) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        let writers: Vec<SharedWriter> = {
            let state = self.lock_state();
            state
                .sessions
                .iter()
                .map(|s| Arc::clone(&s.writer))
                .collect()
        };
        let msg = ServerMsg::Draining {
            detail: detail.to_owned(),
        };
        for writer in writers {
            write_msg(&writer, &msg);
        }
        self.work_ready.notify_all();
    }

    /// True once a drain was requested and no session holds unfinished
    /// jobs — the moment the accept loop may exit cleanly.
    fn drained(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
            && self
                .lock_state()
                .sessions
                .iter()
                .all(|s| s.queue.is_empty())
    }

    /// One reaper tick: cancels sessions whose lease expired, then
    /// severs their sockets so blocked readers wake and run the normal
    /// teardown path (jobs cancelled, queue slots and labels freed).
    fn reap_expired_sessions(&self) -> usize {
        let reaped = self.reaper.sweep();
        let streams: Vec<TcpStream> = {
            let mut state = self.lock_state();
            state
                .sessions
                .iter_mut()
                .filter(|s| s.cancel.is_cancelled())
                .filter_map(|s| s.stream.take())
                .collect()
        };
        for stream in &streams {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if reaped > 0 {
            self.work_ready.notify_all();
        }
        reaped
    }

    /// The deterministic checkpoint path for a grid, when checkpointing
    /// is configured — derived from the label so an identical resubmit
    /// (even after a server restart) finds its previous progress.
    fn checkpoint_path(&self, label: &str) -> Option<PathBuf> {
        let dir = self.config.checkpoint_dir.as_ref()?;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Some(dir.join(format!("wf-{hash:016x}.json")))
    }

    /// Validates and queues a submit, streaming `Accepted` (plus any
    /// checkpoint-restored results) or `Rejected` on the session.
    fn submit(&self, session: u64, job: &JobSpec) {
        let total = job.spec.point_count();
        let label = checkpoint_label(&job.spec);

        if self.draining.load(Ordering::SeqCst) {
            // Permanent for this server instance: a resilient client
            // should fail over, not spin against a draining endpoint.
            self.reply(
                session,
                &ServerMsg::Rejected {
                    reason: "draining: no new jobs accepted".to_owned(),
                    retry_after_ms: 0,
                },
            );
            return;
        }

        // Reserve the grid's identity before anything else: a retried
        // submit of a job that is still running (e.g. the client's ack
        // was lost in transit) must bounce instead of double-running.
        if !self.lock_labels().insert(label.clone()) {
            self.reply(
                session,
                &ServerMsg::Rejected {
                    reason: format!("duplicate job: grid '{label}' is already active"),
                    retry_after_ms: self.config.retry_after_ms,
                },
            );
            return;
        }

        // Load prior progress before taking the state lock — file IO
        // must not stall the scheduler.
        let mut checkpoint = None;
        let mut restored_entries: Vec<(usize, (u64, u64))> = Vec::new();
        let ckpt_path = self.checkpoint_path(&label);
        if let (Some(path), true) = (ckpt_path, total > 0) {
            match SweepCheckpoint::load(path, &label, total) {
                Ok(ckpt) => {
                    for entry in ckpt.entries() {
                        if let Some(r) = <(u64, u64)>::from_checkpoint_value(&entry.result) {
                            restored_entries.push((entry.index, r));
                        }
                    }
                    checkpoint = Some(ckpt);
                }
                Err(e) => {
                    // A damaged checkpoint refuses the submit loudly
                    // instead of silently recomputing (or worse, merging
                    // garbage). `retry_after_ms: 0` marks it permanent.
                    self.lock_labels().remove(&label);
                    self.reply(
                        session,
                        &ServerMsg::Rejected {
                            reason: format!("checkpoint: {e}"),
                            retry_after_ms: 0,
                        },
                    );
                    return;
                }
            }
        }

        let mut state = self.lock_state();
        let id = state.next_job;
        let (writer, session_cancel) = {
            let Some(slot) = state.slot_mut(session) else {
                drop(state);
                self.lock_labels().remove(&label);
                return;
            };
            let rejection = if total == 0 {
                Some(ServerMsg::Rejected {
                    reason: "invalid job: empty waterfall grid".to_owned(),
                    retry_after_ms: 0,
                })
            } else if slot.breaker.is_open() {
                Some(ServerMsg::Rejected {
                    reason: "circuit open: this session's jobs keep failing".to_owned(),
                    retry_after_ms: self.config.retry_after_ms,
                })
            } else if slot.queue.len() >= self.config.queue_capacity {
                Some(ServerMsg::Rejected {
                    reason: format!(
                        "queue full: {} jobs already pending",
                        self.config.queue_capacity
                    ),
                    retry_after_ms: self.config.retry_after_ms,
                })
            } else {
                None
            };
            if let Some(msg) = rejection {
                let writer = Arc::clone(&slot.writer);
                drop(state);
                self.lock_labels().remove(&label);
                write_msg(&writer, &msg);
                return;
            }
            (Arc::clone(&slot.writer), slot.cancel.clone())
        };

        state.next_job += 1;
        let restored: HashSet<usize> = restored_entries.iter().map(|&(i, _)| i).collect();
        let job_state = Arc::new(JobState {
            id,
            session,
            spec: job.spec.clone(),
            label,
            total,
            restored,
            next_dispatch: AtomicUsize::new(0),
            terminal: AtomicBool::new(false),
            cancel: session_cancel.child(),
            deadline: job
                .deadline_ms
                .map(|ms| Deadline::starting_now(Duration::from_millis(ms))),
            progress: Mutex::new(JobProgress {
                buffer: restored_entries.into_iter().collect(),
                emit_cursor: 0,
                computed: 0,
                finished: false,
                checkpoint,
            }),
        });
        if let Some(slot) = state.slot_mut(session) {
            slot.queue.push_back(Arc::clone(&job_state));
        }
        drop(state);

        write_msg(
            &writer,
            &ServerMsg::Accepted {
                job: id,
                points: total,
            },
        );
        // Stream whatever prefix the checkpoint already covers; a fully
        // restored job completes without touching the worker pool.
        self.flush_progress(&job_state, &writer);
        self.work_ready.notify_all();
    }

    /// Sends a message on a session's stream, if it still exists.
    fn reply(&self, session: u64, msg: &ServerMsg) {
        let writer = {
            let mut state = self.lock_state();
            state.slot_mut(session).map(|s| Arc::clone(&s.writer))
        };
        if let Some(writer) = writer {
            write_msg(&writer, msg);
        }
    }

    /// Delivers one computed point and streams the newly contiguous
    /// prefix; drives the job terminal when it completes or fails.
    fn deliver(&self, job: &Arc<JobState>, index: usize, result: Result<(u64, u64), String>) {
        let tally = match result {
            Ok(t) => t,
            Err(detail) => {
                self.finish_job(job, "failed", &detail);
                return;
            }
        };
        let writer = {
            let mut state = self.lock_state();
            match state.slot_mut(job.session) {
                Some(slot) => Arc::clone(&slot.writer),
                None => return, // session already torn down
            }
        };
        {
            let mut p = job.progress.lock().unwrap_or_else(PoisonError::into_inner);
            if p.finished {
                return; // late result for a cancelled/expired job
            }
            p.buffer.insert(index, tally);
            p.computed += 1;
            if let Some(ckpt) = &mut p.checkpoint {
                ckpt.record(CheckpointEntry {
                    index,
                    attempts: 1,
                    nanos: 0,
                    result: tally.to_checkpoint_value(),
                });
                if ckpt.len().is_multiple_of(8) {
                    let _ = ckpt.persist();
                }
            }
        }
        self.flush_progress(job, &writer);
    }

    /// Streams the contiguous prefix of a job's reorder buffer, emits
    /// telemetry, and completes the job when the last point lands.
    fn flush_progress(&self, job: &Arc<JobState>, writer: &SharedWriter) {
        let mut complete = false;
        {
            let mut p = job.progress.lock().unwrap_or_else(PoisonError::into_inner);
            if p.finished {
                return;
            }
            let mut emitted = false;
            loop {
                let cursor = p.emit_cursor;
                let Some(tally) = p.buffer.remove(&cursor) else {
                    break;
                };
                write_msg(
                    writer,
                    &ServerMsg::Result {
                        job: job.id,
                        index: p.emit_cursor,
                        errors: tally.0,
                        bits: tally.1,
                    },
                );
                p.emit_cursor += 1;
                emitted = true;
            }
            let every = self.config.telemetry_every.max(1);
            if emitted && p.emit_cursor < job.total && p.emit_cursor.is_multiple_of(every) {
                write_msg(
                    writer,
                    &ServerMsg::Telemetry {
                        job: job.id,
                        done: p.emit_cursor,
                        total: job.total,
                    },
                );
            }
            if p.emit_cursor == job.total {
                p.finished = true;
                job.terminal.store(true, Ordering::SeqCst);
                if let Some(ckpt) = &p.checkpoint {
                    let _ = ckpt.discard();
                }
                write_msg(
                    writer,
                    &ServerMsg::Done {
                        job: job.id,
                        status: "complete".to_owned(),
                        computed: p.computed,
                        detail: String::new(),
                    },
                );
                complete = true;
            }
        }
        if complete {
            self.retire(job, true);
        }
    }

    /// Drives a job to a non-complete terminal status exactly once.
    fn finish_job(&self, job: &Arc<JobState>, status: &str, detail: &str) {
        job.cancel.cancel();
        {
            let mut p = job.progress.lock().unwrap_or_else(PoisonError::into_inner);
            if p.finished {
                return;
            }
            p.finished = true;
            job.terminal.store(true, Ordering::SeqCst);
            // Keep the checkpoint: a cancelled or expired job's progress
            // is exactly what a resubmit wants to restore.
            if let Some(ckpt) = &p.checkpoint {
                let _ = ckpt.persist();
            }
            let writer = {
                let mut state = self.lock_state();
                state.slot_mut(job.session).map(|s| Arc::clone(&s.writer))
            };
            if let Some(writer) = writer {
                write_msg(
                    &writer,
                    &ServerMsg::Done {
                        job: job.id,
                        status: status.to_owned(),
                        computed: p.computed,
                        detail: detail.to_owned(),
                    },
                );
            }
        }
        self.retire(job, false);
    }

    /// Removes a terminal job from its session queue, feeds the breaker,
    /// and frees both its capacity slot and its idempotency label.
    fn retire(&self, job: &Arc<JobState>, succeeded: bool) {
        let mut state = self.lock_state();
        if let Some(slot) = state.slot_mut(job.session) {
            slot.queue.retain(|j| j.id != job.id);
            if succeeded {
                slot.breaker.record_success();
            } else {
                slot.breaker.record_failure(&self.config.breaker);
            }
        }
        drop(state);
        self.lock_labels().remove(&job.label);
        self.work_ready.notify_all();
    }

    /// Cancels one of a session's jobs by id.
    fn cancel_job(&self, session: u64, job_id: u64) {
        let job = {
            let mut state = self.lock_state();
            state
                .slot_mut(session)
                .and_then(|slot| slot.queue.iter().find(|j| j.id == job_id).map(Arc::clone))
        };
        match job {
            Some(job) => self.finish_job(&job, "cancelled", ""),
            None => self.reply(
                session,
                &ServerMsg::Error {
                    detail: format!("no such job {job_id}"),
                },
            ),
        }
    }

    /// Tears a session down: cancels its scope, finishes its jobs, and
    /// unregisters it.
    fn cleanup_session(&self, session: u64) {
        let (jobs, cancel) = {
            let mut state = self.lock_state();
            let Some(pos) = state.sessions.iter().position(|s| s.id == session) else {
                return;
            };
            let slot = state.sessions.remove(pos);
            if state.rr_cursor >= state.sessions.len() {
                state.rr_cursor = 0;
            }
            (slot.queue, slot.cancel)
        };
        cancel.cancel();
        for job in &jobs {
            self.finish_job(job, "cancelled", "session closed");
        }
        self.work_ready.notify_all();
    }

    /// The worker loop: pick, compute, deliver, until shutdown.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let picked = {
                let mut state = self.lock_state();
                loop {
                    if self.shutdown.is_cancelled() {
                        return;
                    }
                    if let Some(p) = state.pick() {
                        break p;
                    }
                    let (guard, _timeout) = self
                        .work_ready
                        .wait_timeout(state, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    state = guard;
                }
            };
            match picked {
                Picked::Finish(job, status) => self.finish_job(&job, status, ""),
                Picked::Compute(job, index) => {
                    let result = waterfall_point(&job.spec, index);
                    self.deliver(&job, index, result);
                }
            }
        }
    }
}

/// A bound simulation server. [`Server::bind`] starts the worker pool;
/// [`Server::run`] serves connections until a client sends `Shutdown`
/// (or [`Server::shutdown_token`] is cancelled), then joins every thread
/// — no orphan threads or sockets survive a clean return.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    reaper_thread: Option<std::thread::JoinHandle<()>>,
    recovery: RecoveryReport,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the worker pool. With a checkpoint directory configured,
    /// first runs the crash-recovery scan ([`Server::recovery`]); with
    /// [`ServerConfig::lease_ms`] set, also starts the lease reaper.
    ///
    /// # Errors
    ///
    /// Socket errors from binding, or filesystem errors creating the
    /// checkpoint directory.
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let mut recovery = RecoveryReport::default();
        if let Some(dir) = &config.checkpoint_dir {
            std::fs::create_dir_all(dir)?;
            recovery = recovery_scan(dir);
        }
        let listener = TcpListener::bind(addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, usize::from)
        } else {
            config.workers
        };
        let lease_ms = config.lease_ms;
        let shared = Arc::new(Shared::new(config));
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        let reaper_thread = lease_ms.map(|ttl_ms| {
            // Sweep a few times per TTL so expiry latency stays a small
            // fraction of the lease itself.
            let tick = Duration::from_millis((ttl_ms / 4).clamp(10, 500));
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while !shared.shutdown.is_cancelled() {
                    std::thread::sleep(tick);
                    shared.reap_expired_sessions();
                }
            })
        });
        Ok(Server {
            listener,
            shared,
            workers,
            reaper_thread,
            recovery,
        })
    }

    /// What the startup crash-recovery scan of the checkpoint directory
    /// found (all zeros when no directory is configured).
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Socket errors from the OS.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The root cancellation scope. Cancelling it (from any thread)
    /// makes [`Server::run`] wind down as if a client sent `Shutdown`.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown.clone()
    }

    /// Accepts and serves connections until shutdown, then joins every
    /// session and worker thread.
    ///
    /// # Errors
    ///
    /// Socket errors from the accept loop.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.is_cancelled() {
            if self.shared.drained() {
                // Graceful drain completed: every in-flight job retired
                // (its checkpoints persisted on the way), so winding the
                // server down loses nothing.
                self.shared.shutdown.cancel();
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    if let Ok(clone) = stream.try_clone() {
                        self.shared
                            .conns
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(clone);
                    }
                    let shared = Arc::clone(&self.shared);
                    readers.push(std::thread::spawn(move || session_main(&shared, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Unblock every session reader, then join the house down.
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        self.shared.work_ready.notify_all();
        for handle in readers {
            let _ = handle.join();
        }
        for handle in self.workers {
            let _ = handle.join();
        }
        if let Some(handle) = self.reaper_thread {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One session's reader: handshake, then frame dispatch until the client
/// leaves or the connection dies.
fn session_main(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reap_handle = stream.try_clone().ok();
    let mut read_half = stream;
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));

    // The first frame must be Hello.
    let (session, lease) = match recv_client(&mut read_half) {
        Ok(wire::ClientMsg::Hello { client: _ }) => {
            let (id, lease) = shared.register_session(Arc::clone(&writer), reap_handle);
            write_msg(
                &writer,
                &ServerMsg::Welcome {
                    session: id,
                    queue_capacity: shared.config.queue_capacity,
                    lease_ms: shared.config.lease_ms,
                },
            );
            (id, lease)
        }
        Ok(_) => {
            write_msg(
                &writer,
                &ServerMsg::Error {
                    detail: "expected hello".to_owned(),
                },
            );
            return;
        }
        Err(_) => return,
    };

    loop {
        let msg = recv_client(&mut read_half);
        if msg.is_ok() {
            // Any frame proves the client is alive — heartbeats carry no
            // payload precisely because arrival alone is the signal.
            lease.touch();
        }
        match msg {
            Ok(wire::ClientMsg::Submit { job }) => shared.submit(session, &job),
            Ok(wire::ClientMsg::Cancel { job }) => shared.cancel_job(session, job),
            Ok(wire::ClientMsg::Heartbeat) => {}
            Ok(wire::ClientMsg::Drain) => shared.begin_drain("drain requested"),
            Ok(wire::ClientMsg::Bye) => break,
            Ok(wire::ClientMsg::Shutdown) => {
                shared.shutdown.cancel();
                break;
            }
            Ok(wire::ClientMsg::Hello { .. }) => {
                write_msg(
                    &writer,
                    &ServerMsg::Error {
                        detail: "session already open".to_owned(),
                    },
                );
            }
            Err(WireError::Malformed(detail)) => {
                write_msg(&writer, &ServerMsg::Error { detail });
            }
            Err(_) => break, // closed, truncated, oversized, or IO: drop
        }
    }
    shared.cleanup_session(session);
}

fn recv_client(stream: &mut TcpStream) -> Result<wire::ClientMsg, WireError> {
    wire::ClientMsg::from_value(&wire::recv(stream)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_standards::StandardId;

    /// An in-memory writer standing in for a client socket.
    #[derive(Clone, Default)]
    struct MemWriter(Arc<Mutex<Vec<u8>>>);
    impl Write for MemWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn tiny_spec(points: usize) -> WaterfallSpec {
        WaterfallSpec {
            standards: vec![StandardId::Ieee80211a],
            snr_db: vec![10.0],
            realizations: points,
            payload_bits: 64,
            base_seed: 7,
            profile: ofdm_bench::waterfall::ChannelProfile::Awgn,
            threads: 1,
        }
    }

    fn shared_with_sessions(n: usize) -> (Arc<Shared>, Vec<u64>) {
        let shared = Arc::new(Shared::new(ServerConfig {
            queue_capacity: 8,
            ..ServerConfig::default()
        }));
        let ids = (0..n)
            .map(|_| {
                shared
                    .register_session(Arc::new(Mutex::new(Box::new(MemWriter::default()))), None)
                    .0
            })
            .collect();
        (shared, ids)
    }

    fn open_session(shared: &Arc<Shared>, sink: &MemWriter) -> u64 {
        shared
            .register_session(Arc::new(Mutex::new(Box::new(sink.clone()))), None)
            .0
    }

    fn decode_all(sink: &MemWriter) -> Vec<ServerMsg> {
        let bytes = sink
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut cursor = bytes.as_slice();
        let mut msgs = Vec::new();
        while let Ok(v) = wire::recv(&mut cursor) {
            msgs.push(ServerMsg::from_value(&v).expect("msg"));
        }
        msgs
    }

    #[test]
    fn round_robin_pick_interleaves_sessions_point_by_point() {
        // Three sessions with jobs of very different sizes: the pick
        // order must cycle A, B, C, A, B, C... regardless of how much
        // work each session holds, and once the small jobs drain the big
        // one gets every remaining slot.
        let (shared, ids) = shared_with_sessions(3);
        let sizes = [6usize, 2, 3];
        for (sid, &points) in ids.iter().zip(&sizes) {
            shared.submit(
                *sid,
                &JobSpec {
                    spec: tiny_spec(points),
                    deadline_ms: None,
                },
            );
        }
        let mut order = Vec::new();
        loop {
            let picked = { shared.lock_state().pick() };
            match picked {
                Some(Picked::Compute(job, _index)) => order.push(job.session),
                Some(Picked::Finish(..)) => panic!("nothing should finish during dispatch"),
                None => break,
            }
        }
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        assert_eq!(
            order,
            // 3-way alternation while everyone has work (2 full rounds),
            // then A/C alternate, then A drains its surplus alone.
            vec![a, b, c, a, b, c, a, c, a, a, a],
            "fair round-robin at point granularity"
        );
    }

    #[test]
    fn queue_capacity_rejects_with_retry_hint() {
        let shared = Arc::new(Shared::new(ServerConfig {
            queue_capacity: 1,
            retry_after_ms: 123,
            ..ServerConfig::default()
        }));
        let sink = MemWriter::default();
        let sid = open_session(&shared, &sink);
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(4),
                deadline_ms: None,
            },
        ); // fills the queue
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(6),
                deadline_ms: None,
            },
        ); // must bounce (a distinct grid, so the label registry is not what rejects it)
        let bytes = sink
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut cursor = bytes.as_slice();
        let first = ServerMsg::from_value(&wire::recv(&mut cursor).expect("frame")).expect("msg");
        assert!(
            matches!(first, ServerMsg::Accepted { points: 4, .. }),
            "{first:?}"
        );
        let second = ServerMsg::from_value(&wire::recv(&mut cursor).expect("frame")).expect("msg");
        match second {
            ServerMsg::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert!(reason.contains("queue full"), "{reason}");
                assert_eq!(retry_after_ms, 123, "backpressure carries the hint");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn empty_grid_is_rejected_permanently() {
        let shared = Arc::new(Shared::new(ServerConfig::default()));
        let sink = MemWriter::default();
        let sid = open_session(&shared, &sink);
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(0),
                deadline_ms: None,
            },
        );
        let bytes = sink
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let msg =
            ServerMsg::from_value(&wire::recv(&mut bytes.as_slice()).expect("frame")).expect("msg");
        match msg {
            ServerMsg::Rejected { retry_after_ms, .. } => {
                assert_eq!(retry_after_ms, 0, "permanent rejections hint no retry")
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn cancelling_a_job_emits_done_and_frees_the_slot() {
        let shared = Arc::new(Shared::new(ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        }));
        let sink = MemWriter::default();
        let sid = open_session(&shared, &sink);
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(4),
                deadline_ms: None,
            },
        );
        shared.cancel_job(sid, 1);
        // The slot is free again: a new submit is accepted.
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(2),
                deadline_ms: None,
            },
        );
        let bytes = sink
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut cursor = bytes.as_slice();
        let mut kinds = Vec::new();
        while let Ok(v) = wire::recv(&mut cursor) {
            kinds.push(ServerMsg::from_value(&v).expect("msg"));
        }
        assert!(matches!(kinds[0], ServerMsg::Accepted { job: 1, .. }));
        assert!(
            matches!(&kinds[1], ServerMsg::Done { job: 1, status, .. } if status == "cancelled")
        );
        assert!(matches!(kinds[2], ServerMsg::Accepted { job: 2, .. }));
    }

    #[test]
    fn assemble_report_matches_in_process_aggregation() {
        let spec = WaterfallSpec {
            standards: vec![StandardId::Ieee80211a, StandardId::Dab],
            snr_db: vec![4.0, 12.0],
            realizations: 2,
            payload_bits: 128,
            base_seed: 99,
            profile: ofdm_bench::waterfall::ChannelProfile::Awgn,
            threads: 2,
        };
        let local = ofdm_bench::waterfall::run_waterfall(&spec, None).expect("local run");
        let results: Vec<(u64, u64)> = (0..spec.point_count())
            .map(|i| waterfall_point(&spec, i).expect("point"))
            .collect();
        let assembled = assemble_report(&spec, &results).expect("full grid");
        assert_eq!(
            ofdm_bench::waterfall::waterfall_json(&spec, &assembled).to_string(),
            ofdm_bench::waterfall::waterfall_json(&spec, &local).to_string(),
            "streamed-and-reassembled results are byte-identical to a local run"
        );
        assert!(assemble_report(&spec, &results[1..]).is_err(), "short grid");
    }

    #[test]
    fn duplicate_label_is_rejected_while_active_and_freed_on_retire() {
        let (shared, ids) = shared_with_sessions(1);
        let other = MemWriter::default();
        let other_sid = open_session(&shared, &other);
        let job = JobSpec {
            spec: tiny_spec(4),
            deadline_ms: None,
        };
        shared.submit(ids[0], &job);
        // The same grid from another session must bounce with a retry
        // hint — the first submission is still running it.
        shared.submit(other_sid, &job);
        let msgs = decode_all(&other);
        match &msgs[0] {
            ServerMsg::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert!(reason.contains("duplicate job"), "{reason}");
                assert!(*retry_after_ms > 0, "duplicates are retryable, not fatal");
            }
            other => panic!("expected duplicate rejection, got {other:?}"),
        }
        // Cancelling the original frees the label; the retry then lands.
        shared.cancel_job(ids[0], 1);
        shared.submit(other_sid, &job);
        let msgs = decode_all(&other);
        assert!(
            matches!(msgs[1], ServerMsg::Accepted { .. }),
            "label freed on retire: {msgs:?}"
        );
    }

    #[test]
    fn draining_refuses_submits_and_reports_drained_when_queues_empty() {
        let (shared, _ids) = shared_with_sessions(1);
        let sink = MemWriter::default();
        let sid = open_session(&shared, &sink);
        assert!(!shared.drained(), "not draining yet");
        shared.begin_drain("test");
        shared.begin_drain("test"); // idempotent
        assert!(shared.drained(), "draining with empty queues is drained");
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(4),
                deadline_ms: None,
            },
        );
        let msgs = decode_all(&sink);
        // Draining broadcast first, then the permanent rejection.
        assert!(
            matches!(&msgs[0], ServerMsg::Draining { .. }),
            "sessions hear a typed draining frame: {msgs:?}"
        );
        match &msgs[1] {
            ServerMsg::Rejected {
                reason,
                retry_after_ms,
            } => {
                assert!(reason.contains("draining"), "{reason}");
                assert_eq!(*retry_after_ms, 0, "draining rejections are permanent");
            }
            other => panic!("expected draining rejection, got {other:?}"),
        }
    }

    #[test]
    fn drain_waits_for_inflight_jobs_before_reporting_drained() {
        let (shared, ids) = shared_with_sessions(1);
        shared.submit(
            ids[0],
            &JobSpec {
                spec: tiny_spec(2),
                deadline_ms: None,
            },
        );
        shared.begin_drain("test");
        assert!(!shared.drained(), "in-flight job holds the drain open");
        // Drive the job to completion by hand (no worker pool here).
        let job = {
            let state = shared.lock_state();
            Arc::clone(&state.sessions.last().expect("session").queue[0])
        };
        while let Some(i) = job.take_next_index() {
            let r = waterfall_point(&job.spec, i).expect("point");
            shared.deliver(&job, i, Ok(r));
        }
        assert!(shared.drained(), "drain completes once the queue empties");
    }

    #[test]
    fn recovery_scan_classifies_checkpoints_and_cleans_tmp_orphans() {
        let dir = std::env::temp_dir().join(format!("rfsim-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // One real checkpoint, one corrupt file, one orphaned tmp.
        let label = "test-grid";
        let ckpt_path = dir.join("wf-0000000000000001.json");
        let mut ckpt = SweepCheckpoint::load(&ckpt_path, label, 4).expect("fresh");
        ckpt.record(CheckpointEntry {
            index: 0,
            attempts: 1,
            nanos: 0,
            result: (3u64, 64u64).to_checkpoint_value(),
        });
        ckpt.persist().expect("persist");
        std::fs::write(dir.join("wf-bad.json"), "{\"schema\":\"other/v9\"}").expect("write");
        std::fs::write(dir.join("wf-cut.json.tmp"), "{\"sch").expect("write");
        let report = recovery_scan(&dir);
        assert_eq!(
            report,
            RecoveryReport {
                resumable: 1,
                corrupt: 1,
                cleaned_tmp: 1
            },
            "scan classifies every file"
        );
        assert!(
            !dir.join("wf-cut.json.tmp").exists(),
            "tmp orphans are removed"
        );
        assert!(
            dir.join("wf-bad.json").exists(),
            "corrupt checkpoints stay for loud submit-time failure"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reaper_severs_expired_sessions_and_frees_their_labels() {
        let shared = Arc::new(Shared::new(ServerConfig {
            queue_capacity: 8,
            lease_ms: Some(30),
            ..ServerConfig::default()
        }));
        let sink = MemWriter::default();
        let sid = open_session(&shared, &sink);
        shared.submit(
            sid,
            &JobSpec {
                spec: tiny_spec(4),
                deadline_ms: None,
            },
        );
        assert_eq!(shared.reap_expired_sessions(), 0, "fresh lease survives");
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(shared.reap_expired_sessions(), 1, "expired lease reaped");
        // The session scope is cancelled, which cancels its job's token;
        // the normal teardown path then retires it. Here (no reader
        // thread) drive it via the scheduler like a worker would.
        let picked = shared.lock_state().pick();
        match picked {
            Some(Picked::Finish(job, status)) => {
                assert_eq!(status, "cancelled");
                shared.finish_job(&job, status, "lease expired");
            }
            other => panic!(
                "expected the reaped session's job to surface as Finish, got {:?}",
                other.is_some()
            ),
        }
        assert!(
            shared.lock_labels().is_empty(),
            "reaped session's labels are reclaimed"
        );
    }
}

//! rfsim-as-a-service: a long-running simulation server and its client.
//!
//! The library splits into three layers:
//!
//! - [`wire`] — the transport: length-prefixed JSON frames over a plain
//!   [`std::net::TcpStream`] (no async runtime), and the typed
//!   [`wire::ClientMsg`]/[`wire::ServerMsg`] message vocabulary.
//! - [`server`] — a pool of workers executing waterfall grid points with
//!   fair round-robin scheduling across client sessions, bounded
//!   per-session queues with backpressure, per-session cancellation
//!   scopes, deadlines, circuit breakers, and optional on-disk sweep
//!   checkpoints (the [`rfsim::supervise`] primitives, wired end to end).
//! - [`client`] — a blocking client that submits jobs, retries through
//!   backpressure, heartbeats its session lease, reconnects through
//!   transport faults ([`client::run_job_with_recovery`]), and tails the
//!   streamed results back into the same
//!   [`ofdm_bench::waterfall::WaterfallReport`] an in-process run yields,
//!   so server-side and local sweeps can be compared byte for byte.
//! - [`chaos`] — a seeded wire-level fault-injection proxy (torn frames,
//!   partial writes, delays, connection resets) for exercising all of the
//!   above deterministically.
//!
//! Grid points are pure in `(spec, index)` ([`waterfall_point`]), which is
//! what makes the service honest: any point may be computed by any worker
//! in any order, restored from a checkpoint, or re-run after a crash, and
//! the assembled report cannot tell the difference.
//!
//! [`waterfall_point`]: ofdm_bench::waterfall::waterfall_point

pub mod chaos;
pub mod client;
pub mod server;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use client::{run_job_with_recovery, BackoffPolicy, Client, JobOutcome, SubmitOutcome};
pub use server::{assemble_report, RecoveryReport, Server, ServerConfig};
pub use wire::{ClientMsg, FrameReader, JobSpec, ServerMsg, WireError, MAX_FRAME};

//! The wire protocol: length-prefixed JSON frames and the typed message
//! vocabulary spoken between `rfsim-cli` and `rfsim-server`.
//!
//! # Framing
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Frames longer than
//! [`MAX_FRAME`] are rejected before allocation — a malformed or
//! malicious peer cannot make the receiver reserve gigabytes. A clean
//! close at a frame boundary reads as [`WireError::Closed`]; EOF inside
//! a frame is [`WireError::Truncated`].
//!
//! # Messages
//!
//! JSON objects tagged by a `"type"` member. Numbers ride as JSON
//! numbers (shortest-roundtrip `f64` rendering, parsed back exactly);
//! the one 64-bit field that may exceed `f64`'s 53-bit integer range —
//! the sweep's `base_seed` — rides as a decimal string.

use ofdm_bench::waterfall::{ChannelProfile, WaterfallSpec};
use ofdm_standards::StandardId;
use serde::json::{self, Value};
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload length in bytes (1 MiB). Far above
/// any real message — a submit for a thousand-point grid is under 1 KiB
/// — and far below anything that could pressure the receiver.
pub const MAX_FRAME: u32 = 1 << 20;

/// A transport- or protocol-level failure.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// The connection died mid-frame; `read` counts the bytes of the
    /// partial frame (length prefix included) consumed before EOF, so a
    /// log line tells a header cut from a torn payload.
    Truncated {
        /// Bytes of the unfinished frame read before the stream ended.
        read: usize,
    },
    /// A frame declared a payload longer than the cap.
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The enforced ceiling ([`MAX_FRAME`]).
        cap: u32,
    },
    /// An underlying socket error.
    Io(std::io::Error),
    /// The frame's payload was not a message we understand.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated { read } => {
                write!(f, "connection died mid-frame after {read} bytes")
            }
            WireError::Oversized { len, cap } => {
                write!(f, "frame of {len} bytes exceeds the {cap}-byte limit")
            }
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Malformed(detail) => write!(f, "malformed message: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// [`WireError::Oversized`] if the payload exceeds [`MAX_FRAME`];
/// otherwise socket errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized {
        len: u32::MAX,
        cap: MAX_FRAME,
    })?;
    if len > MAX_FRAME {
        return Err(WireError::Oversized {
            len,
            cap: MAX_FRAME,
        });
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// An incremental frame decoder that survives read timeouts.
///
/// [`FrameReader::poll`] pulls bytes until a whole frame is assembled,
/// retaining partial state across calls: a `WouldBlock`/`TimedOut` read
/// error returns `Ok(None)` *without losing the bytes already consumed*,
/// so a client may use a socket read timeout as a heartbeat tick and keep
/// decoding afterwards. The blocking [`read_frame`] is a thin wrapper.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 4],
    header_filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
    in_payload: bool,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Bytes of the current partial frame consumed so far (length prefix
    /// included); zero at a frame boundary.
    pub fn partial_bytes(&self) -> usize {
        if self.in_payload {
            4 + self.payload_filled
        } else {
            self.header_filled
        }
    }

    /// Pulls bytes from `r` until a frame completes (`Ok(Some(payload))`)
    /// or the read would block (`Ok(None)`, state retained).
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] on clean EOF at a frame boundary,
    /// [`WireError::Truncated`] (with the partial byte count) on EOF
    /// inside a frame, [`WireError::Oversized`] on a length prefix beyond
    /// [`MAX_FRAME`], and [`WireError::Io`] for other socket errors.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
        while !self.in_payload {
            if self.header_filled == 4 {
                let len = u32::from_be_bytes(self.header);
                if len > MAX_FRAME {
                    return Err(WireError::Oversized {
                        len,
                        cap: MAX_FRAME,
                    });
                }
                self.payload = vec![0u8; len as usize];
                self.payload_filled = 0;
                self.in_payload = true;
                break;
            }
            match r.read(&mut self.header[self.header_filled..]) {
                Ok(0) => {
                    return Err(if self.header_filled == 0 {
                        WireError::Closed
                    } else {
                        WireError::Truncated {
                            read: self.header_filled,
                        }
                    })
                }
                Ok(n) => self.header_filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if would_block(&e) => return Ok(None),
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        while self.payload_filled < self.payload.len() {
            match r.read(&mut self.payload[self.payload_filled..]) {
                Ok(0) => {
                    return Err(WireError::Truncated {
                        read: 4 + self.payload_filled,
                    })
                }
                Ok(n) => self.payload_filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if would_block(&e) => return Ok(None),
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        self.header_filled = 0;
        self.payload_filled = 0;
        self.in_payload = false;
        Ok(Some(std::mem::take(&mut self.payload)))
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one frame's payload, reassembling across however many partial
/// reads the transport delivers.
///
/// # Errors
///
/// [`WireError::Closed`] on clean EOF at a frame boundary,
/// [`WireError::Truncated`] (carrying the partial byte count) on EOF
/// inside a frame, [`WireError::Oversized`] on a length prefix beyond
/// [`MAX_FRAME`]. A read timeout surfaces as [`WireError::Io`] — use a
/// [`FrameReader`] directly to resume across timeouts.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    match FrameReader::new().poll(r)? {
        Some(payload) => Ok(payload),
        None => Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "read timed out mid-frame",
        ))),
    }
}

/// Serializes a message value and writes it as one frame.
///
/// # Errors
///
/// Propagates [`write_frame`] failures.
pub fn send(w: &mut impl Write, msg: &Value) -> Result<(), WireError> {
    write_frame(w, msg.to_string().as_bytes())
}

/// Parses a frame payload as a JSON message value.
///
/// # Errors
///
/// [`WireError::Malformed`] for payloads that are not UTF-8 JSON.
pub fn parse_payload(payload: &[u8]) -> Result<Value, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| WireError::Malformed("payload is not UTF-8".to_owned()))?;
    json::parse(text).map_err(WireError::Malformed)
}

/// Reads one frame and parses its JSON payload.
///
/// # Errors
///
/// Framing errors from [`read_frame`], or [`WireError::Malformed`] for
/// payloads that are not UTF-8 JSON.
pub fn recv(r: &mut impl Read) -> Result<Value, WireError> {
    parse_payload(&read_frame(r)?)
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, WireError> {
    v.get(key)
        .ok_or_else(|| WireError::Malformed(format!("missing `{key}`")))
}

fn str_field(v: &Value, key: &str) -> Result<String, WireError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| WireError::Malformed(format!("`{key}` must be a string")))?
        .to_owned())
}

fn f64_field(v: &Value, key: &str) -> Result<f64, WireError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| WireError::Malformed(format!("`{key}` must be a number")))
}

/// Integers ride as JSON numbers; anything negative, fractional, or past
/// `f64`'s exact-integer range is rejected rather than rounded.
fn u64_field(v: &Value, key: &str) -> Result<u64, WireError> {
    let x = f64_field(v, key)?;
    if x < 0.0 || x.fract() != 0.0 || x >= 9.0e15 {
        return Err(WireError::Malformed(format!(
            "`{key}` must be a non-negative integer, got {x}"
        )));
    }
    Ok(x as u64)
}

fn usize_field(v: &Value, key: &str) -> Result<usize, WireError> {
    usize::try_from(u64_field(v, key)?)
        .map_err(|_| WireError::Malformed(format!("`{key}` out of range")))
}

fn profile_to_value(profile: &ChannelProfile) -> Value {
    match profile {
        ChannelProfile::Awgn => Value::Object(vec![("type".into(), Value::from("awgn"))]),
        ChannelProfile::Rayleigh { paths } => {
            let paths: Vec<Value> = paths
                .iter()
                .map(|&(d, p)| Value::Array(vec![Value::from(d), Value::from(p)]))
                .collect();
            Value::Object(vec![
                ("type".into(), Value::from("rayleigh")),
                ("paths".into(), Value::Array(paths)),
            ])
        }
    }
}

fn profile_from_value(v: &Value) -> Result<ChannelProfile, WireError> {
    match str_field(v, "type")?.as_str() {
        "awgn" => Ok(ChannelProfile::Awgn),
        "rayleigh" => {
            let raw = field(v, "paths")?
                .as_array()
                .ok_or_else(|| WireError::Malformed("`paths` must be an array".to_owned()))?;
            let mut paths = Vec::with_capacity(raw.len());
            for pair in raw {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| WireError::Malformed("each path is `[delay, power]`".into()))?;
                let delay = pair[0]
                    .as_f64()
                    .filter(|d| *d >= 0.0 && d.fract() == 0.0)
                    .ok_or_else(|| WireError::Malformed("path delay must be an integer".into()))?;
                let power = pair[1]
                    .as_f64()
                    .ok_or_else(|| WireError::Malformed("path power must be a number".into()))?;
                paths.push((delay as usize, power));
            }
            Ok(ChannelProfile::Rayleigh { paths })
        }
        other => Err(WireError::Malformed(format!("unknown profile `{other}`"))),
    }
}

/// Encodes a sweep grid for the wire (member order is fixed, so equal
/// specs encode to identical bytes).
pub fn spec_to_value(spec: &WaterfallSpec) -> Value {
    let standards: Vec<Value> = spec
        .standards
        .iter()
        .map(|s| Value::from(s.key()))
        .collect();
    let snr: Vec<Value> = spec.snr_db.iter().map(|&s| Value::from(s)).collect();
    Value::Object(vec![
        ("standards".into(), Value::Array(standards)),
        ("snr_db".into(), Value::Array(snr)),
        ("realizations".into(), Value::from(spec.realizations)),
        ("payload_bits".into(), Value::from(spec.payload_bits)),
        ("base_seed".into(), Value::from(spec.base_seed.to_string())),
        ("profile".into(), profile_to_value(&spec.profile)),
        ("threads".into(), Value::from(spec.threads)),
    ])
}

/// Decodes a sweep grid from its wire form.
///
/// # Errors
///
/// [`WireError::Malformed`] naming the offending member.
pub fn spec_from_value(v: &Value) -> Result<WaterfallSpec, WireError> {
    let raw_standards = field(v, "standards")?
        .as_array()
        .ok_or_else(|| WireError::Malformed("`standards` must be an array".to_owned()))?;
    let mut standards = Vec::with_capacity(raw_standards.len());
    for s in raw_standards {
        let key = s
            .as_str()
            .ok_or_else(|| WireError::Malformed("standard keys are strings".to_owned()))?;
        standards.push(
            StandardId::from_key(key)
                .ok_or_else(|| WireError::Malformed(format!("unknown standard `{key}`")))?,
        );
    }
    let snr_db = field(v, "snr_db")?
        .as_array()
        .ok_or_else(|| WireError::Malformed("`snr_db` must be an array".to_owned()))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| WireError::Malformed("SNR entries are numbers".to_owned()))
        })
        .collect::<Result<Vec<f64>, WireError>>()?;
    let base_seed = str_field(v, "base_seed")?
        .parse::<u64>()
        .map_err(|e| WireError::Malformed(format!("`base_seed`: {e}")))?;
    Ok(WaterfallSpec {
        standards,
        snr_db,
        realizations: usize_field(v, "realizations")?,
        payload_bits: usize_field(v, "payload_bits")?,
        base_seed,
        profile: profile_from_value(field(v, "profile")?)?,
        threads: usize_field(v, "threads")?,
    })
}

/// A unit of work a client submits: the sweep grid plus per-job
/// supervision knobs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The waterfall grid to run.
    pub spec: WaterfallSpec,
    /// Wall-clock budget for the whole job; the server abandons the job
    /// with status `"deadline"` once it expires. `None` = unbounded.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// Encodes the job for the wire.
    pub fn to_value(&self) -> Value {
        let mut members = vec![("spec".into(), spec_to_value(&self.spec))];
        if let Some(ms) = self.deadline_ms {
            members.push(("deadline_ms".into(), Value::from(ms)));
        }
        Value::Object(members)
    }

    /// Decodes a job from its wire form.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] naming the offending member.
    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(_) => Some(u64_field(v, "deadline_ms")?),
        };
        Ok(JobSpec {
            spec: spec_from_value(field(v, "spec")?)?,
            deadline_ms,
        })
    }
}

/// Messages a client sends to the server.
#[derive(Debug, Clone)]
pub enum ClientMsg {
    /// Opens the session; `client` is a display name for logs.
    Hello {
        /// Client display name.
        client: String,
    },
    /// Submits a job to this session's queue.
    Submit {
        /// The job to run.
        job: JobSpec,
    },
    /// Cancels one of this session's jobs by server-assigned id.
    Cancel {
        /// The job id from [`ServerMsg::Accepted`].
        job: u64,
    },
    /// Proof of liveness: refreshes this session's lease. Carries no
    /// payload and elicits no reply.
    Heartbeat,
    /// Asks the server to drain: refuse new submits, finish (or
    /// checkpoint) in-flight jobs, then exit cleanly.
    Drain,
    /// Ends the session cleanly (running jobs are cancelled).
    Bye,
    /// Asks the server to shut down entirely.
    Shutdown,
}

impl ClientMsg {
    /// Encodes the message for the wire.
    pub fn to_value(&self) -> Value {
        match self {
            ClientMsg::Hello { client } => Value::Object(vec![
                ("type".into(), Value::from("hello")),
                ("client".into(), Value::from(client.as_str())),
            ]),
            ClientMsg::Submit { job } => Value::Object(vec![
                ("type".into(), Value::from("submit")),
                ("job".into(), job.to_value()),
            ]),
            ClientMsg::Cancel { job } => Value::Object(vec![
                ("type".into(), Value::from("cancel")),
                ("job".into(), Value::from(*job)),
            ]),
            ClientMsg::Heartbeat => Value::Object(vec![("type".into(), Value::from("heartbeat"))]),
            ClientMsg::Drain => Value::Object(vec![("type".into(), Value::from("drain"))]),
            ClientMsg::Bye => Value::Object(vec![("type".into(), Value::from("bye"))]),
            ClientMsg::Shutdown => Value::Object(vec![("type".into(), Value::from("shutdown"))]),
        }
    }

    /// Decodes a message from its wire form.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown tags or bad members.
    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        match str_field(v, "type")?.as_str() {
            "hello" => Ok(ClientMsg::Hello {
                client: str_field(v, "client")?,
            }),
            "submit" => Ok(ClientMsg::Submit {
                job: JobSpec::from_value(field(v, "job")?)?,
            }),
            "cancel" => Ok(ClientMsg::Cancel {
                job: u64_field(v, "job")?,
            }),
            "heartbeat" => Ok(ClientMsg::Heartbeat),
            "drain" => Ok(ClientMsg::Drain),
            "bye" => Ok(ClientMsg::Bye),
            "shutdown" => Ok(ClientMsg::Shutdown),
            other => Err(WireError::Malformed(format!("unknown message `{other}`"))),
        }
    }
}

/// Messages the server streams back to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Session opened.
    Welcome {
        /// Server-assigned session id.
        session: u64,
        /// How many jobs this session may have queued or running at once.
        queue_capacity: usize,
        /// When set, the session lease TTL in milliseconds: the client
        /// must send *some* frame (a [`ClientMsg::Heartbeat`] suffices)
        /// at least this often or be reaped. `None` = no lease.
        lease_ms: Option<u64>,
    },
    /// A submit was queued.
    Accepted {
        /// Server-assigned job id (unique per server run).
        job: u64,
        /// Grid points the job decomposes into.
        points: usize,
    },
    /// A submit was refused; retry after the hinted delay.
    Rejected {
        /// Why (queue full, circuit open, invalid grid).
        reason: String,
        /// Backpressure hint in milliseconds.
        retry_after_ms: u64,
    },
    /// One grid point's tally. Streamed strictly in index order per job.
    Result {
        /// The job this point belongs to.
        job: u64,
        /// Flat grid index (see `WaterfallSpec::decompose`).
        index: usize,
        /// Bit errors at this point.
        errors: u64,
        /// Bits measured at this point.
        bits: u64,
    },
    /// Periodic progress for a running job.
    Telemetry {
        /// The job being reported.
        job: u64,
        /// Points finished so far.
        done: usize,
        /// Total points in the job.
        total: usize,
    },
    /// The job reached a terminal state; no further frames mention it.
    Done {
        /// The finished job.
        job: u64,
        /// `"complete"`, `"cancelled"`, `"deadline"`, or `"failed"`.
        status: String,
        /// Points actually computed (excludes checkpoint restores).
        computed: usize,
        /// Failure detail when status is `"failed"`, else empty.
        detail: String,
    },
    /// The server is draining: it will finish (or checkpoint) in-flight
    /// jobs, refuse new submits, and then exit. Broadcast once to every
    /// live session when a drain begins.
    Draining {
        /// Human-readable drain context.
        detail: String,
    },
    /// A protocol-level complaint about the last client frame.
    Error {
        /// What was wrong.
        detail: String,
    },
}

impl ServerMsg {
    /// Encodes the message for the wire.
    pub fn to_value(&self) -> Value {
        match self {
            ServerMsg::Welcome {
                session,
                queue_capacity,
                lease_ms,
            } => {
                let mut members = vec![
                    ("type".into(), Value::from("welcome")),
                    ("session".into(), Value::from(*session)),
                    ("queue_capacity".into(), Value::from(*queue_capacity)),
                ];
                if let Some(ms) = lease_ms {
                    members.push(("lease_ms".into(), Value::from(*ms)));
                }
                Value::Object(members)
            }
            ServerMsg::Accepted { job, points } => Value::Object(vec![
                ("type".into(), Value::from("accepted")),
                ("job".into(), Value::from(*job)),
                ("points".into(), Value::from(*points)),
            ]),
            ServerMsg::Rejected {
                reason,
                retry_after_ms,
            } => Value::Object(vec![
                ("type".into(), Value::from("rejected")),
                ("reason".into(), Value::from(reason.as_str())),
                ("retry_after_ms".into(), Value::from(*retry_after_ms)),
            ]),
            ServerMsg::Result {
                job,
                index,
                errors,
                bits,
            } => Value::Object(vec![
                ("type".into(), Value::from("result")),
                ("job".into(), Value::from(*job)),
                ("index".into(), Value::from(*index)),
                ("errors".into(), Value::from(*errors)),
                ("bits".into(), Value::from(*bits)),
            ]),
            ServerMsg::Telemetry { job, done, total } => Value::Object(vec![
                ("type".into(), Value::from("telemetry")),
                ("job".into(), Value::from(*job)),
                ("done".into(), Value::from(*done)),
                ("total".into(), Value::from(*total)),
            ]),
            ServerMsg::Done {
                job,
                status,
                computed,
                detail,
            } => Value::Object(vec![
                ("type".into(), Value::from("done")),
                ("job".into(), Value::from(*job)),
                ("status".into(), Value::from(status.as_str())),
                ("computed".into(), Value::from(*computed)),
                ("detail".into(), Value::from(detail.as_str())),
            ]),
            ServerMsg::Draining { detail } => Value::Object(vec![
                ("type".into(), Value::from("draining")),
                ("detail".into(), Value::from(detail.as_str())),
            ]),
            ServerMsg::Error { detail } => Value::Object(vec![
                ("type".into(), Value::from("error")),
                ("detail".into(), Value::from(detail.as_str())),
            ]),
        }
    }

    /// Decodes a message from its wire form.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown tags or bad members.
    pub fn from_value(v: &Value) -> Result<Self, WireError> {
        match str_field(v, "type")?.as_str() {
            "welcome" => Ok(ServerMsg::Welcome {
                session: u64_field(v, "session")?,
                queue_capacity: usize_field(v, "queue_capacity")?,
                lease_ms: match v.get("lease_ms") {
                    None | Some(Value::Null) => None,
                    Some(_) => Some(u64_field(v, "lease_ms")?),
                },
            }),
            "accepted" => Ok(ServerMsg::Accepted {
                job: u64_field(v, "job")?,
                points: usize_field(v, "points")?,
            }),
            "rejected" => Ok(ServerMsg::Rejected {
                reason: str_field(v, "reason")?,
                retry_after_ms: u64_field(v, "retry_after_ms")?,
            }),
            "result" => Ok(ServerMsg::Result {
                job: u64_field(v, "job")?,
                index: usize_field(v, "index")?,
                errors: u64_field(v, "errors")?,
                bits: u64_field(v, "bits")?,
            }),
            "telemetry" => Ok(ServerMsg::Telemetry {
                job: u64_field(v, "job")?,
                done: usize_field(v, "done")?,
                total: usize_field(v, "total")?,
            }),
            "done" => Ok(ServerMsg::Done {
                job: u64_field(v, "job")?,
                status: str_field(v, "status")?,
                computed: usize_field(v, "computed")?,
                detail: str_field(v, "detail")?,
            }),
            "draining" => Ok(ServerMsg::Draining {
                detail: str_field(v, "detail")?,
            }),
            "error" => Ok(ServerMsg::Error {
                detail: str_field(v, "detail")?,
            }),
            other => Err(WireError::Malformed(format!("unknown message `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> WaterfallSpec {
        WaterfallSpec {
            standards: vec![StandardId::Ieee80211a, StandardId::Dab],
            snr_db: vec![2.0, 8.5, 14.25],
            realizations: 2,
            payload_bits: 256,
            base_seed: u64::MAX - 7,
            profile: ChannelProfile::Rayleigh {
                paths: vec![(0, 0.75), (3, 0.25)],
            },
            threads: 0,
        }
    }

    #[test]
    fn spec_roundtrips_including_full_range_seed() {
        let spec = sample_spec();
        let back = spec_from_value(&spec_to_value(&spec)).expect("decodes");
        assert_eq!(back.standards, spec.standards);
        assert_eq!(back.snr_db, spec.snr_db);
        assert_eq!(back.realizations, spec.realizations);
        assert_eq!(back.payload_bits, spec.payload_bits);
        assert_eq!(back.base_seed, spec.base_seed, "64-bit seed survives");
        assert_eq!(back.profile, spec.profile);
        // Re-encoding is byte-stable.
        assert_eq!(
            spec_to_value(&back).to_string(),
            spec_to_value(&spec).to_string()
        );
    }

    #[test]
    fn every_message_roundtrips_through_the_codec() {
        let client_msgs = [
            ClientMsg::Hello {
                client: "bench-1".into(),
            },
            ClientMsg::Submit {
                job: JobSpec {
                    spec: sample_spec(),
                    deadline_ms: Some(30_000),
                },
            },
            ClientMsg::Cancel { job: 17 },
            ClientMsg::Heartbeat,
            ClientMsg::Drain,
            ClientMsg::Bye,
            ClientMsg::Shutdown,
        ];
        for msg in client_msgs {
            let mut buf = Vec::new();
            send(&mut buf, &msg.to_value()).expect("encodes");
            let back =
                ClientMsg::from_value(&recv(&mut buf.as_slice()).expect("frames")).expect("typed");
            assert_eq!(back.to_value().to_string(), msg.to_value().to_string());
        }
        let server_msgs = [
            ServerMsg::Welcome {
                session: 3,
                queue_capacity: 4,
                lease_ms: None,
            },
            ServerMsg::Welcome {
                session: 5,
                queue_capacity: 2,
                lease_ms: Some(1500),
            },
            ServerMsg::Accepted { job: 9, points: 12 },
            ServerMsg::Rejected {
                reason: "queue full".into(),
                retry_after_ms: 250,
            },
            ServerMsg::Result {
                job: 9,
                index: 4,
                errors: 31,
                bits: 512,
            },
            ServerMsg::Telemetry {
                job: 9,
                done: 5,
                total: 12,
            },
            ServerMsg::Done {
                job: 9,
                status: "complete".into(),
                computed: 12,
                detail: String::new(),
            },
            ServerMsg::Draining {
                detail: "server draining".into(),
            },
            ServerMsg::Error {
                detail: "unknown message `nope`".into(),
            },
        ];
        for msg in server_msgs {
            let mut buf = Vec::new();
            send(&mut buf, &msg.to_value()).expect("encodes");
            let back =
                ServerMsg::from_value(&recv(&mut buf.as_slice()).expect("frames")).expect("typed");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn oversized_frames_are_rejected_both_ways_with_observed_length() {
        // Writing: a payload over the cap never touches the stream, and
        // the error names the offending length next to the cap.
        let mut sink = Vec::new();
        let big = vec![b'x'; MAX_FRAME as usize + 1];
        match write_frame(&mut sink, &big) {
            Err(WireError::Oversized { len, cap }) => {
                assert_eq!(len, MAX_FRAME + 1);
                assert_eq!(cap, MAX_FRAME);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
        assert!(sink.is_empty(), "nothing written before the length check");

        // Reading: a hostile length prefix is rejected before allocating,
        // reporting the declared length so logs are actionable.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(MAX_FRAME + 7).to_be_bytes());
        hostile.extend_from_slice(b"whatever");
        match read_frame(&mut hostile.as_slice()) {
            Err(WireError::Oversized { len, cap }) => {
                assert_eq!(len, MAX_FRAME + 7);
                assert_eq!(cap, MAX_FRAME);
                let text = WireError::Oversized { len, cap }.to_string();
                assert!(
                    text.contains(&len.to_string()) && text.contains(&cap.to_string()),
                    "{text}"
                );
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    /// A reader that delivers one byte per `read` call — the worst
    /// fragmentation TCP can legally produce.
    struct OneByte<R>(R);
    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let take = buf.len().min(1);
            self.0.read(&mut buf[..take])
        }
    }

    #[test]
    fn partial_reads_reassemble_and_truncation_is_distinguished() {
        let msg = ServerMsg::Result {
            job: 1,
            index: 2,
            errors: 3,
            bits: 4,
        };
        let mut buf = Vec::new();
        send(&mut buf, &msg.to_value()).expect("encodes");
        send(
            &mut buf,
            &ServerMsg::Error { detail: "x".into() }.to_value(),
        )
        .expect("encodes");

        // Byte-at-a-time delivery reassembles both frames, then reports a
        // clean close at the boundary.
        let mut slow = OneByte(buf.as_slice());
        let a = ServerMsg::from_value(&recv(&mut slow).expect("first frame")).expect("typed");
        assert_eq!(a, msg);
        assert!(matches!(
            ServerMsg::from_value(&recv(&mut slow).expect("second frame")),
            Ok(ServerMsg::Error { .. })
        ));
        assert!(matches!(recv(&mut slow), Err(WireError::Closed)));

        // A stream cut inside a frame is Truncated, not Closed, and the
        // error counts every byte consumed (4-byte prefix + partial
        // payload) so the cut point is recoverable from logs.
        let cut = &buf[..buf.len() - 3];
        let mut slow = OneByte(cut);
        let first = read_frame(&mut slow).expect("first frame is whole");
        let second_len = buf.len() - (4 + first.len()) - 4; // second frame's payload
        match read_frame(&mut slow) {
            Err(WireError::Truncated { read }) => {
                assert_eq!(read, 4 + (second_len - 3), "prefix + partial payload")
            }
            other => panic!("expected truncation, got {other:?}"),
        }

        // A stream cut inside the *length prefix* is Truncated too, with
        // a sub-header byte count — today's most common torn-frame shape.
        for cut_at in 1..4usize {
            let mut header_cut = &buf[..cut_at];
            match read_frame(&mut header_cut) {
                Err(WireError::Truncated { read }) => assert_eq!(read, cut_at),
                other => panic!("cut at {cut_at}: expected truncation, got {other:?}"),
            }
        }
    }

    /// A reader that yields one byte, then a `WouldBlock` timeout, then
    /// the next byte — the worst interleaving a heartbeat-timeout socket
    /// can produce.
    struct TimeoutEveryOther<R> {
        inner: R,
        block_next: bool,
    }
    impl<R: Read> Read for TimeoutEveryOther<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.block_next = !self.block_next;
            if self.block_next {
                let take = buf.len().min(1);
                self.inner.read(&mut buf[..take])
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "simulated timeout",
                ))
            }
        }
    }

    #[test]
    fn frame_reader_resumes_across_timeouts_without_losing_bytes() {
        let msg = ServerMsg::Telemetry {
            job: 3,
            done: 7,
            total: 9,
        };
        let mut buf = Vec::new();
        send(&mut buf, &msg.to_value()).expect("encodes");
        let total = buf.len();
        let mut src = TimeoutEveryOther {
            inner: buf.as_slice(),
            block_next: false,
        };
        let mut reader = FrameReader::new();
        let mut timeouts = 0usize;
        let payload = loop {
            match reader.poll(&mut src).expect("no transport error") {
                Some(payload) => break payload,
                None => timeouts += 1,
            }
        };
        assert_eq!(
            timeouts,
            total - 1,
            "a timeout between every pair of delivered bytes"
        );
        assert_eq!(
            ServerMsg::from_value(&parse_payload(&payload).expect("json")).expect("typed"),
            msg,
            "frame reassembled byte-for-byte across timeouts and 1-byte reads"
        );
        assert_eq!(reader.partial_bytes(), 0, "reader back at a boundary");

        // Mid-prefix progress is visible while a frame is in flight.
        let mut two = &buf[..2];
        let mut partial = FrameReader::new();
        assert!(matches!(
            partial.poll(&mut two),
            Err(WireError::Truncated { read: 2 })
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{not json").expect("frames fine");
        assert!(matches!(
            recv(&mut buf.as_slice()),
            Err(WireError::Malformed(_))
        ));

        let v = json::parse("{\"type\":\"no-such-message\"}").expect("valid json");
        assert!(ClientMsg::from_value(&v).is_err());
        assert!(ServerMsg::from_value(&v).is_err());
    }
}

//! Engine-level tests for the declarative experiment lab: spec parsing,
//! assertion semantics, byte-stable documents, checkpointed runs, and
//! the "new experiment = new spec file" workflow.

use ofdm_bench::gates;
use ofdm_bench::lab::{report, run_spec, ExperimentSpec, LabOptions};
use serde::json::{parse, Value};

fn spec_from(text: &str) -> ExperimentSpec {
    let doc = parse(text).expect("valid JSON");
    ExperimentSpec::parse(&doc).expect("valid spec")
}

/// A cheap two-cell spec: `design_effort` is pure parameter inspection.
fn tiny_spec(assertions: &str) -> ExperimentSpec {
    spec_from(&format!(
        r#"{{
            "schema": "lab-spec/v1",
            "name": "tiny",
            "workload": "design_effort",
            "base_seed": 3,
            "scenarios": [
                {{ "label": "wlan", "standard": "802.11a" }},
                {{ "label": "dab", "standard": "dab" }}
            ],
            "assertions": {assertions}
        }}"#
    ))
}

#[test]
fn lab_json_is_byte_stable_across_runs() {
    let spec = tiny_spec("[]");
    let a = run_spec(&spec, &LabOptions::default()).expect("runs");
    let b = run_spec(&spec, &LabOptions::default()).expect("runs");
    assert_eq!(
        report::lab_json(&a).to_string(),
        report::lab_json(&b).to_string()
    );
}

#[test]
fn parse_rejects_wrong_schema_and_duplicates() {
    let doc = parse(r#"{"schema": "nope", "name": "x"}"#).expect("valid JSON");
    let err = ExperimentSpec::parse(&doc).expect_err("schema gate");
    assert!(err.contains("lab-spec/v1"), "{err}");

    let doc = parse(
        r#"{
            "schema": "lab-spec/v1", "name": "x", "workload": "design_effort",
            "base_seed": 1,
            "scenarios": [{ "label": "a" }, { "label": "a" }]
        }"#,
    )
    .expect("valid JSON");
    let err = ExperimentSpec::parse(&doc).expect_err("duplicate labels");
    assert!(err.contains("duplicate label"), "{err}");
}

#[test]
fn parse_rejects_half_pinned_order_assertion() {
    let doc = parse(
        r#"{
            "schema": "lab-spec/v1", "name": "x", "workload": "design_effort",
            "base_seed": 1,
            "scenarios": [{ "label": "a" }, { "label": "b" }],
            "assertions": [{
                "check": "order", "metric": "mechanism_count",
                "lesser": { "scenario": "a" }, "greater": {}
            }]
        }"#,
    )
    .expect("valid JSON");
    let err = ExperimentSpec::parse(&doc).expect_err("half-pinned pair");
    assert!(err.contains("pinned on both sides or neither"), "{err}");
}

#[test]
fn failing_bound_flips_the_verdict_with_detail() {
    let run = run_spec(
        &tiny_spec(
            r#"[{ "check": "bound", "metric": "mechanism_count", "op": ">", "value": 100 }]"#,
        ),
        &LabOptions::default(),
    )
    .expect("runs");
    assert!(!run.verdict);
    assert_eq!(run.assertions.len(), 1);
    assert!(!run.assertions[0].pass);
    // The detail names the first offending cell so failures are actionable.
    assert!(
        run.assertions[0].detail.contains("wlan"),
        "{}",
        run.assertions[0].detail
    );
    // And the rendered table carries the FAIL marker plus the verdict.
    let text = report::render(&run);
    assert!(text.contains("[FAIL]"), "{text}");
    assert!(text.contains("verdict: fail"), "{text}");
}

#[test]
fn equal_assertion_compares_cells_within_tolerance() {
    let run = run_spec(
        &tiny_spec(
            r#"[{
                "check": "equal", "metric": "mechanism_count",
                "left": { "scenario": "wlan" }, "right": { "scenario": "dab" },
                "tol": 100
            }]"#,
        ),
        &LabOptions::default(),
    )
    .expect("runs");
    assert!(run.verdict, "{}", report::render(&run));
}

#[test]
fn unknown_metric_and_unknown_cell_are_hard_errors() {
    let err = run_spec(
        &tiny_spec(r#"[{ "check": "bound", "metric": "nope", "op": ">", "value": 0 }]"#),
        &LabOptions::default(),
    )
    .expect_err("unknown metric");
    assert!(err.contains("nope"), "{err}");

    let err = run_spec(
        &tiny_spec(
            r#"[{ "check": "bound", "metric": "mechanism_count", "scenario": "ghost",
                  "op": ">", "value": 0 }]"#,
        ),
        &LabOptions::default(),
    )
    .expect_err("unknown scenario");
    assert!(err.contains("ghost"), "{err}");
}

#[test]
fn volatile_metrics_cannot_be_asserted() {
    // `tx_timing` emits wall-clock metrics flagged volatile; pinning an
    // assertion to one must fail loudly, not flake.
    let spec = spec_from(
        r#"{
            "schema": "lab-spec/v1", "name": "volatile", "workload": "tx_timing",
            "base_seed": 1,
            "defaults": { "n_symbols": 2, "iters": 1 },
            "scenarios": [{ "label": "s" }],
            "assertions": [{ "check": "bound", "metric": "t_rtl_s", "op": ">", "value": 0 }]
        }"#,
    );
    let err = run_spec(&spec, &LabOptions::default()).expect_err("volatile assert");
    assert!(err.contains("volatile"), "{err}");
}

#[test]
fn volatile_metrics_stay_out_of_the_cells() {
    let spec = spec_from(
        r#"{
            "schema": "lab-spec/v1", "name": "volatile", "workload": "tx_timing",
            "base_seed": 1,
            "defaults": { "n_symbols": 2, "iters": 1 },
            "scenarios": [{ "label": "s" }]
        }"#,
    );
    let run = run_spec(&spec, &LabOptions::default()).expect("runs");
    let doc = report::lab_json(&run);
    let cell = &doc.get("cells").and_then(Value::as_array).expect("cells")[0];
    let metrics = cell
        .get("metrics")
        .and_then(|m| m.as_object())
        .expect("metrics");
    assert!(metrics.iter().any(|(k, _)| k == "bits"));
    // Timing values appear only as names under "volatile".
    assert!(metrics.iter().all(|(k, _)| !k.starts_with("t_")));
    let volatile = cell
        .get("volatile")
        .and_then(Value::as_array)
        .expect("volatile list");
    assert!(volatile.iter().any(|v| v.as_str() == Some("t_rtl_s")));
}

#[test]
fn checkpointed_run_matches_direct_run() {
    let spec = tiny_spec("[]");
    let ckpt = std::env::temp_dir().join(format!("lab-engine-ckpt-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let direct = run_spec(&spec, &LabOptions::default()).expect("runs");
    let options = LabOptions {
        threads: None,
        checkpoint: Some(ckpt.clone()),
    };
    let resumed = run_spec(&spec, &options).expect("runs");
    assert_eq!(
        report::lab_json(&direct).to_string(),
        report::lab_json(&resumed).to_string()
    );
    // A completed run discards its checkpoint.
    assert!(!ckpt.exists());
}

#[test]
fn new_experiment_is_a_new_spec_file() {
    // The whole point of the lab: adding an experiment is writing JSON,
    // not code. Drop a spec in a temp dir, load and run it.
    let path = std::env::temp_dir().join(format!("lab-new-exp-{}.json", std::process::id()));
    std::fs::write(
        &path,
        r#"{
            "schema": "lab-spec/v1",
            "name": "adhoc",
            "workload": "loopback",
            "base_seed": 99,
            "repeats": 2,
            "defaults": { "payload_seed": 17 },
            "scenarios": [{ "label": "adsl", "standard": "adsl" }],
            "assertions": [
                { "check": "bound", "metric": "loopback_errors", "op": "==", "value": 0 }
            ]
        }"#,
    )
    .expect("writes");
    let spec = ExperimentSpec::load(&path).expect("loads");
    assert_eq!(spec.run_count(), 2);
    let run = run_spec(&spec, &LabOptions::default()).expect("runs");
    assert!(run.verdict, "{}", report::render(&run));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn check_lab_doc_validates_shape_and_verdict() {
    let run = run_spec(&tiny_spec("[]"), &LabOptions::default()).expect("runs");
    let doc = report::lab_json(&run);
    let (cells, assertions) = gates::check_lab_doc(&doc).expect("valid doc");
    assert_eq!((cells, assertions), (2, 0));

    // A failing verdict is a gate failure even if the shape is fine.
    let text = doc.to_string().replace("\"pass\"", "\"fail\"");
    let failing = parse(&text).expect("valid JSON");
    let err = gates::check_lab_doc(&failing).expect_err("verdict gate");
    assert!(err.contains("verdict"), "{err}");
}

#[test]
fn repeats_feed_percentile_spread() {
    // Loopback PAPR varies with the per-repeat cell seed, so repeats>1
    // must produce a real distribution, not copies.
    let spec = spec_from(
        r#"{
            "schema": "lab-spec/v1", "name": "spread", "workload": "loopback",
            "base_seed": 5, "repeats": 3,
            "scenarios": [{ "label": "wlan", "standard": "802.11a" }]
        }"#,
    );
    let run = run_spec(&spec, &LabOptions::default()).expect("runs");
    let papr = run.cells[0].metric("papr_db").expect("papr metric");
    assert_eq!(papr.values.len(), 3);
    assert!(papr.stats.max > papr.stats.min);
    assert!(papr.stats.p50 >= papr.stats.min && papr.stats.p50 <= papr.stats.max);
}

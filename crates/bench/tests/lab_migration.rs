//! Migration-equivalence tests: each legacy E-number experiment, now a
//! spec file under `examples/lab/`, must reproduce the hand-coded
//! experiment's verdict and key metrics — bit-identical where the legacy
//! body was deterministic.

use ofdm_bench::lab::{run_spec, CellAgg, ExperimentSpec, LabOptions, LabRun};
use ofdm_bench::waterfall::{run_waterfall, ChannelProfile, WaterfallSpec};
use ofdm_bench::{evm_after_gain_correction, loopback_errors, transmit_frame};
use ofdm_standards::{default_params, StandardId};
use rfsim::prelude::*;
use std::path::PathBuf;

fn lab_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/lab")
}

fn run_lab(file: &str) -> LabRun {
    let path = lab_dir().join(file);
    let spec = ExperimentSpec::load(&path).expect("spec loads");
    run_spec(&spec, &LabOptions::default()).expect("spec runs")
}

fn cell<'a>(run: &'a LabRun, scenario: &str, variant: &str) -> &'a CellAgg {
    run.cells
        .iter()
        .find(|c| c.scenario == scenario && c.variant == variant)
        .expect("cell exists")
}

fn value(run: &LabRun, scenario: &str, variant: &str, metric: &str) -> f64 {
    cell(run, scenario, variant)
        .metric(metric)
        .expect("metric")
        .values[0]
}

#[test]
fn every_spec_file_parses() {
    let dir = lab_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("lab dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let spec =
            ExperimentSpec::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(spec.run_count() >= 1, "{}", path.display());
        seen += 1;
    }
    assert!(seen >= 16, "expected the full spec library, found {seen}");
}

#[test]
fn e1_matches_legacy_loopback_exactly() {
    let run = run_lab("e1.json");
    assert!(run.verdict);
    assert_eq!(run.cells.len(), StandardId::ALL.len());
    // Spot-check two presets bit-for-bit against the legacy body:
    // seed 17, 4 symbols of payload.
    for key in ["802.11a", "dvb-t"] {
        let id = StandardId::from_key(key).expect("known key");
        let p = default_params(id);
        let n_bits = 4 * p.nominal_bits_per_symbol().max(100);
        let frame = transmit_frame(&p, n_bits, 17);
        assert_eq!(
            value(&run, key, "base", "papr_db"),
            frame.signal().papr_db(),
            "{key}: PAPR must be bit-identical to the legacy experiment"
        );
        assert_eq!(
            value(&run, key, "base", "loopback_errors"),
            loopback_errors(&p, n_bits, 17) as f64,
        );
        assert_eq!(
            value(&run, key, "base", "fft_size"),
            p.map.fft_size() as f64
        );
    }
}

#[test]
fn e6_pa_matches_legacy_evm_exactly() {
    let run = run_lab("e6_pa.json");
    assert!(run.verdict);
    // Legacy body: Mbps54, 12 kbit payload at seed 9, EVM over 6 symbols.
    let p = ofdm_standards::ieee80211a::params(ofdm_standards::ieee80211a::WlanRate::Mbps54);
    let frame = transmit_frame(&p, 12_000, 9);
    for (label, ibo) in [("ibo0", 0.0), ("ibo12", 12.0)] {
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::new(frame.signal().clone()));
        let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(ibo));
        g.chain(&[src, pa]).expect("wires");
        g.run().expect("runs");
        let out = g.output(pa).expect("ran");
        let legacy = evm_after_gain_correction(&p, &frame, out, 6);
        assert_eq!(value(&run, label, "base", "evm_db"), legacy, "{label}");
    }
}

#[test]
fn e9_matches_legacy_fault_counts() {
    let run = run_lab("e9_faults.json");
    assert!(run.verdict);
    let (outcomes, report) = ofdm_bench::lab::workloads::run_fault_sweep();
    let faults = report.faults.expect("resilient sweep");
    assert_eq!(
        value(&run, "sweep", "base", "outcomes"),
        outcomes.len() as f64
    );
    assert_eq!(
        value(&run, "sweep", "base", "succeeded"),
        faults.succeeded as f64
    );
    assert_eq!(
        value(&run, "sweep", "base", "retried"),
        faults.retried as f64
    );
    assert_eq!(
        value(&run, "sweep", "base", "faulted"),
        faults.faulted as f64
    );
    assert_eq!(
        value(&run, "sweep", "base", "panics_caught"),
        faults.panics_caught as f64
    );
    assert_eq!(
        value(&run, "sweep", "base", "errors_caught"),
        faults.errors_caught as f64
    );
}

#[test]
fn ber_grid_cells_are_bit_identical_to_run_waterfall() {
    // The E11 migration contract: a lab spec with the same grid geometry
    // and seed reproduces `run_waterfall`'s per-point error/bit tallies
    // exactly — the kernel replays the same flat-index seed stream.
    let spec = WaterfallSpec {
        standards: vec![StandardId::Ieee80211a, StandardId::Dab],
        snr_db: vec![3.0, 9.0],
        realizations: 2,
        payload_bits: 400,
        base_seed: 777,
        profile: ChannelProfile::Awgn,
        threads: 0,
    };
    let legacy = run_waterfall(&spec, None).expect("waterfall runs");

    let doc = serde::json::parse(
        r#"{
            "schema": "lab-spec/v1",
            "name": "e11_equiv",
            "workload": "ber_grid",
            "base_seed": 777,
            "defaults": {
                "grid_seed": 777, "n_snr": 2, "realizations": 2,
                "payload_bits": 400, "profile": "awgn"
            },
            "scenarios": [
                { "label": "snr3", "snr_db": 3, "snr_index": 0 },
                { "label": "snr9", "snr_db": 9, "snr_index": 1 }
            ],
            "variants": [
                { "label": "802.11a", "standard": "802.11a", "std_index": 0 },
                { "label": "dab", "standard": "dab", "std_index": 1 }
            ]
        }"#,
    )
    .expect("valid JSON");
    let lab_spec = ExperimentSpec::parse(&doc).expect("parses");
    let run = run_spec(&lab_spec, &LabOptions::default()).expect("runs");

    for (s, curve) in legacy.curves.iter().enumerate() {
        let variant = curve.standard.key();
        for (g, point) in curve.points.iter().enumerate() {
            let scenario = ["snr3", "snr9"][g];
            assert_eq!(
                value(&run, scenario, variant, "errors"),
                point.errors as f64,
                "standard {s} point {g}: error tallies must be bit-identical"
            );
            assert_eq!(value(&run, scenario, variant, "bits"), point.bits as f64);
            assert_eq!(value(&run, scenario, variant, "ber"), point.ber());
        }
    }
}

#[test]
fn e11_specs_reproduce_legacy_verdicts() {
    // The real E11 grids are sized for release CI; here it is enough
    // that the specs parse with the legacy grid geometry and seeds.
    let awgn = ExperimentSpec::load(&lab_dir().join("e11_awgn.json")).expect("loads");
    assert_eq!(awgn.base_seed, 0xE11);
    assert_eq!(awgn.scenarios.len(), 5);
    assert_eq!(awgn.variants.len(), 3);
    let rayleigh = ExperimentSpec::load(&lab_dir().join("e11_rayleigh.json")).expect("loads");
    assert_eq!(rayleigh.base_seed, 0xFAD);
    assert_eq!(rayleigh.scenarios.len(), 3);
}

#[test]
fn e12_service_roundtrip_or_graceful_skip() {
    // The service kernels need the sibling `rfsim-server`/`rfsim-cli`
    // binaries, which `cargo test -p ofdm-bench` does not build. Run the
    // full round trip when they exist, skip loudly when they don't.
    let path = lab_dir().join("e12.json");
    let spec = ExperimentSpec::load(&path).expect("spec loads");
    match run_spec(&spec, &LabOptions::default()) {
        Ok(run) => assert!(
            run.verdict,
            "service round trip must pass when binaries exist"
        ),
        Err(e) if e.contains("not found") => {
            eprintln!("skipping e12 migration check: {e}");
        }
        Err(e) => panic!("unexpected service failure: {e}"),
    }
}

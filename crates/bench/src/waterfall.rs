//! BER-vs-SNR waterfall sweeps over the full TX→channel→RX loop.
//!
//! A waterfall run is a grid of (standard × SNR × channel realization)
//! points. Each point is a *pure function* of the spec and its flat
//! index — payload bits, fading realization and noise stream are all
//! derived from `scenario_seed(base_seed, index)` — so points shard
//! across the [`SweepPlan`] worker pool in any order, resume from a
//! [`SweepCheckpoint`] after an interruption, and still produce a
//! byte-identical `waterfall.json` (EXPERIMENTS.md E11).

use crate::theory;
use ofdm_core::ber::{BerCounter, BitSource};
use ofdm_core::params::OfdmParams;
use ofdm_core::MotherModel;
use ofdm_dsp::Complex64;
use ofdm_rx::eq::ChannelEstimate;
use ofdm_rx::receiver::ReferenceReceiver;
use ofdm_standards::{default_params, StandardId};
use rfsim::prelude::{AwgnChannel, Block, FadingChannel};
use rfsim::{scenario_seed, SweepCheckpoint, SweepPlan};
use serde::json::Value;
use std::path::Path;

/// The channel every grid point runs through.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelProfile {
    /// Additive white Gaussian noise only.
    Awgn,
    /// Quasi-static Rayleigh tapped delay line (`(delay_samples, power)`
    /// paths, one independent realization per grid point) followed by
    /// AWGN; the receiver equalizes with perfect channel knowledge.
    Rayleigh {
        /// Power-delay profile.
        paths: Vec<(usize, f64)>,
    },
}

impl ChannelProfile {
    /// A short stable name for JSON and checkpoint labels.
    pub fn label(&self) -> String {
        match self {
            ChannelProfile::Awgn => "awgn".to_owned(),
            ChannelProfile::Rayleigh { paths } => {
                let mut s = "rayleigh".to_owned();
                for (d, p) in paths {
                    s.push_str(&format!("-{d}:{p}"));
                }
                s
            }
        }
    }
}

/// The full grid of a waterfall run.
#[derive(Debug, Clone)]
pub struct WaterfallSpec {
    /// Standards to sweep (one curve each).
    pub standards: Vec<StandardId>,
    /// SNR grid in dB (noise power is set relative to mean TX power).
    pub snr_db: Vec<f64>,
    /// Independent channel/noise realizations per (standard, SNR) cell.
    pub realizations: usize,
    /// Payload bits per realization.
    pub payload_bits: usize,
    /// Base seed; every grid point derives its own streams from it.
    pub base_seed: u64,
    /// Channel model between TX and RX.
    pub profile: ChannelProfile,
    /// Worker threads (`0` = one per CPU).
    pub threads: usize,
}

impl WaterfallSpec {
    /// Total grid points.
    pub fn point_count(&self) -> usize {
        self.standards.len() * self.snr_db.len() * self.realizations
    }

    /// Splits a flat point index into `(standard, snr, realization)`
    /// indices. Realization is the fastest-varying axis.
    pub fn decompose(&self, index: usize) -> (usize, usize, usize) {
        let per_std = self.snr_db.len() * self.realizations;
        (
            index / per_std,
            (index % per_std) / self.realizations,
            index % self.realizations,
        )
    }
}

/// The deterministic label a spec's checkpoint is validated against —
/// resuming with a changed grid or profile is detected as a mismatch
/// instead of silently merging incompatible points.
pub fn checkpoint_label(spec: &WaterfallSpec) -> String {
    let stds: Vec<&str> = spec.standards.iter().map(|s| s.key()).collect();
    format!(
        "waterfall/{}/{}x{}x{}/bits{}/seed{}/snr{:?}",
        spec.profile.label(),
        stds.join("+"),
        spec.snr_db.len(),
        spec.realizations,
        spec.payload_bits,
        spec.base_seed,
        spec.snr_db,
    )
}

/// Measures one TX→channel→RX point: transmits `payload_bits` seeded
/// bits through `params`, applies the channel profile at `snr_db`, and
/// counts bit errors after the reference receiver.
///
/// A frame the receiver cannot decode at all counts every payload bit
/// as an error — a decoding failure is the worst outcome, not a skipped
/// sample.
///
/// # Errors
///
/// A message if the parameter set fails to build a transmitter,
/// receiver, or channel.
pub fn measure_ber_point(
    params: &OfdmParams,
    profile: &ChannelProfile,
    snr_db: f64,
    payload_bits: usize,
    seed: u64,
) -> Result<(u64, u64), String> {
    let payload_seed = scenario_seed(seed, 1);
    let fading_seed = scenario_seed(seed, 2);
    let noise_seed = scenario_seed(seed, 3);

    let sent = BitSource::new(payload_seed).take(payload_bits);
    let mut tx = MotherModel::new(params.clone()).map_err(|e| format!("tx: {e}"))?;
    let frame = tx.transmit(&sent).map_err(|e| format!("transmit: {e}"))?;
    // Noise σ is fixed by the *transmitted* mean power, so under fading
    // the instantaneous SNR follows |h|² and averages to the grid SNR —
    // the convention the closed-form Rayleigh curves assume.
    let tx_power = frame.signal().power();

    let mut rx = ReferenceReceiver::new(params.clone()).map_err(|e| format!("rx: {e}"))?;
    let mut signal = frame.signal().clone();
    if let ChannelProfile::Rayleigh { paths } = profile {
        // Quasi-static: zero Doppler freezes the realization over the
        // frame, and the receiver gets the exact frequency response.
        let mut fading = FadingChannel::rayleigh(paths.clone(), 0.0, fading_seed);
        signal = fading
            .process(std::slice::from_ref(&signal))
            .map_err(|e| format!("fading: {e}"))?;
        let fft = params.map.fft_size() as f64;
        let known: Vec<(i32, Complex64)> = params
            .map
            .data_carriers()
            .iter()
            .map(|&k| (k, fading.freq_response_at(k as f64 / fft, 0, 1.0)))
            .collect();
        let reference: Vec<(i32, Complex64)> =
            known.iter().map(|&(k, _)| (k, Complex64::ONE)).collect();
        rx.set_channel_estimate(ChannelEstimate::from_reference(&known, &reference));
    }
    let mut awgn = AwgnChannel::from_snr_db(snr_db, noise_seed).with_reference_power(tx_power);
    let noisy = awgn
        .process(std::slice::from_ref(&signal))
        .map_err(|e| format!("awgn: {e}"))?;

    let mut counter = BerCounter::new();
    match rx.receive(&noisy, sent.len()) {
        Ok(got) => counter.record(&sent, &got),
        Err(_) => counter.add(sent.len() as u64, sent.len() as u64),
    }
    Ok((counter.errors, counter.bits))
}

/// Measures grid point `index` of `spec` — the unit the worker pool
/// shards. Pure in `(spec, index)`.
///
/// # Errors
///
/// Propagates [`measure_ber_point`] failures.
pub fn waterfall_point(spec: &WaterfallSpec, index: usize) -> Result<(u64, u64), String> {
    let (std_idx, snr_idx, _real) = spec.decompose(index);
    let params = default_params(spec.standards[std_idx]);
    measure_ber_point(
        &params,
        &spec.profile,
        spec.snr_db[snr_idx],
        spec.payload_bits,
        scenario_seed(spec.base_seed, index),
    )
}

/// One standard's measured BER-vs-SNR curve.
#[derive(Debug, Clone)]
pub struct WaterfallCurve {
    /// The standard.
    pub standard: StandardId,
    /// One merged tally per SNR grid point, in `snr_db` order.
    pub points: Vec<BerCounter>,
}

/// The aggregated result of a waterfall run.
#[derive(Debug, Clone)]
pub struct WaterfallReport {
    /// One curve per requested standard, in request order.
    pub curves: Vec<WaterfallCurve>,
    /// Grid points restored from a checkpoint instead of re-run.
    pub resumed: usize,
}

/// Runs the full grid across the worker pool. With a `checkpoint` path,
/// completed points are persisted as they land and restored on the next
/// call; without one the run is fail-fast and in-memory only.
///
/// # Errors
///
/// The first failing grid point's message, or the rendering of
/// [`rfsim::SimError::CheckpointCorrupt`] when the checkpoint file exists
/// but is truncated/corrupt — a damaged resume fails loudly instead of
/// silently recomputing the sweep from zero.
pub fn run_waterfall(
    spec: &WaterfallSpec,
    checkpoint: Option<&Path>,
) -> Result<WaterfallReport, String> {
    let count = spec.point_count();
    if count == 0 {
        return Err("empty waterfall grid".to_owned());
    }
    let mut plan = SweepPlan::new(count);
    if spec.threads > 0 {
        plan = plan.threads(spec.threads);
    }
    let (results, resumed): (Vec<(u64, u64)>, usize) = match checkpoint {
        None => {
            let (results, _report) = plan.run_fail_fast(|i| waterfall_point(spec, i))?;
            (results, 0)
        }
        Some(path) => {
            let mut ckpt = SweepCheckpoint::load(path, &checkpoint_label(spec), count)
                .map_err(|e| e.to_string())?;
            let (outcomes, report) =
                plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| waterfall_point(spec, i));
            let mut results = Vec::with_capacity(count);
            for (i, outcome) in outcomes.iter().enumerate() {
                match outcome.result() {
                    Some(&r) => results.push(r),
                    None => return Err(format!("grid point {i} faulted every attempt")),
                }
            }
            // The grid is complete — the checkpoint has served its purpose.
            ckpt.discard().map_err(|e| format!("checkpoint: {e}"))?;
            let resumed = report.supervision.as_ref().map(|s| s.resumed).unwrap_or(0);
            (results, resumed)
        }
    };

    let mut curves = Vec::with_capacity(spec.standards.len());
    for (s, &standard) in spec.standards.iter().enumerate() {
        let mut points = vec![BerCounter::new(); spec.snr_db.len()];
        for (g, point) in points.iter_mut().enumerate() {
            for r in 0..spec.realizations {
                let index = (s * spec.snr_db.len() + g) * spec.realizations + r;
                let (errors, bits) = results[index];
                point.add(errors, bits);
            }
        }
        curves.push(WaterfallCurve { standard, points });
    }
    Ok(WaterfallReport { curves, resumed })
}

/// Renders a run as the machine-readable `waterfall.json` document
/// (schema `waterfall/v1`). Serialization is deterministic — member
/// order is insertion order and numbers render shortest-roundtrip — so
/// identical results give byte-identical files.
pub fn waterfall_json(spec: &WaterfallSpec, report: &WaterfallReport) -> Value {
    let snr: Vec<Value> = spec.snr_db.iter().map(|&s| Value::from(s)).collect();
    let mut standards = Vec::with_capacity(report.curves.len());
    for curve in &report.curves {
        let ber: Vec<Value> = curve.points.iter().map(|c| Value::from(c.ber())).collect();
        let errors: Vec<Value> = curve.points.iter().map(|c| Value::from(c.errors)).collect();
        let bits: Vec<Value> = curve.points.iter().map(|c| Value::from(c.bits)).collect();
        standards.push((
            curve.standard.key().to_owned(),
            Value::Object(vec![
                ("ber".into(), Value::Array(ber)),
                ("errors".into(), Value::Array(errors)),
                ("bits".into(), Value::Array(bits)),
            ]),
        ));
    }
    Value::Object(vec![
        ("schema".into(), Value::from("waterfall/v1")),
        ("profile".into(), Value::from(spec.profile.label())),
        ("payload_bits".into(), Value::from(spec.payload_bits)),
        ("realizations".into(), Value::from(spec.realizations)),
        ("base_seed".into(), Value::from(spec.base_seed)),
        ("snr_db".into(), Value::Array(snr)),
        ("standards".into(), Value::Object(standards)),
    ])
}

/// Theory sanity: the closed-form uncoded QPSK AWGN curve for display
/// next to measured curves (measured coded curves should sit at or
/// below it at matched per-bit SNR once coding gain kicks in).
pub fn qpsk_reference_curve(snr_db: &[f64]) -> Vec<f64> {
    snr_db
        .iter()
        .map(|&db| theory::qpsk_ber_awgn(theory::db_to_linear(db)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WaterfallSpec {
        WaterfallSpec {
            standards: vec![StandardId::Ieee80211a, StandardId::Dab],
            snr_db: vec![6.0, 14.0],
            realizations: 2,
            payload_bits: 256,
            base_seed: 99,
            profile: ChannelProfile::Awgn,
            threads: 2,
        }
    }

    #[test]
    fn decompose_roundtrips() {
        let spec = tiny_spec();
        assert_eq!(spec.point_count(), 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..spec.point_count() {
            let (s, g, r) = spec.decompose(i);
            assert!(s < 2 && g < 2 && r < 2);
            assert!(seen.insert((s, g, r)));
            assert_eq!((s * 2 + g) * 2 + r, i);
        }
    }

    #[test]
    fn points_are_deterministic() {
        let spec = tiny_spec();
        let a = waterfall_point(&spec, 3).expect("point runs");
        let b = waterfall_point(&spec, 3).expect("point runs");
        assert_eq!(a, b);
        assert!(a.1 >= spec.payload_bits as u64);
        // Different realizations of the same cell draw different noise.
        let c = waterfall_point(&spec, 2).expect("point runs");
        assert_eq!(spec.decompose(2).1, spec.decompose(3).1);
        // (errors may coincide at 0; the bits always match)
        assert_eq!(a.1, c.1);
    }

    #[test]
    fn awgn_high_snr_is_error_free_low_snr_is_not() {
        let p = default_params(StandardId::Ieee80211a);
        let clean = measure_ber_point(&p, &ChannelProfile::Awgn, 40.0, 512, 5).expect("runs");
        assert_eq!(clean.0, 0, "40 dB SNR must decode error-free");
        let noisy = measure_ber_point(&p, &ChannelProfile::Awgn, -3.0, 512, 5).expect("runs");
        assert!(noisy.0 > 0, "-3 dB SNR must show errors");
    }

    #[test]
    fn rayleigh_profile_equalizes_with_perfect_csi() {
        let p = default_params(StandardId::Ieee80211a);
        let profile = ChannelProfile::Rayleigh {
            paths: vec![(0, 1.0)],
        };
        // Flat fading + perfect CSI + very high SNR: most realizations
        // decode clean; average a few seeds to dodge deep fades.
        let mut total_err = 0;
        for seed in 0..4 {
            let (e, _) = measure_ber_point(&p, &profile, 45.0, 256, seed).expect("runs");
            total_err += e;
        }
        assert!(
            total_err < 256,
            "perfect-CSI flat fading at 45 dB should mostly decode ({total_err} errors)"
        );
    }

    #[test]
    fn label_distinguishes_specs() {
        let a = tiny_spec();
        let mut b = tiny_spec();
        b.base_seed += 1;
        assert_ne!(checkpoint_label(&a), checkpoint_label(&b));
        let mut c = tiny_spec();
        c.profile = ChannelProfile::Rayleigh {
            paths: vec![(0, 0.8), (2, 0.2)],
        };
        assert_ne!(checkpoint_label(&a), checkpoint_label(&c));
        assert!(checkpoint_label(&c).contains("rayleigh"));
    }

    #[test]
    fn json_document_shape() {
        let spec = tiny_spec();
        let report = WaterfallReport {
            curves: spec
                .standards
                .iter()
                .map(|&standard| WaterfallCurve {
                    standard,
                    points: vec![
                        BerCounter {
                            errors: 10,
                            bits: 1000,
                        },
                        BerCounter {
                            errors: 0,
                            bits: 1000,
                        },
                    ],
                })
                .collect(),
            resumed: 0,
        };
        let doc = waterfall_json(&spec, &report);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("waterfall/v1")
        );
        let stds = doc
            .get("standards")
            .and_then(Value::as_object)
            .expect("standards object");
        assert_eq!(stds.len(), 2);
        let ber = stds[0]
            .1
            .get("ber")
            .and_then(Value::as_array)
            .expect("ber array");
        assert_eq!(ber[0].as_f64(), Some(0.01));
        // Round-trips through the parser byte-identically.
        let text = doc.to_string();
        let reparsed = serde::json::parse(&text).expect("valid JSON");
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn reference_curve_is_monotone() {
        let curve = qpsk_reference_curve(&[0.0, 4.0, 8.0, 12.0]);
        for w in curve.windows(2) {
            assert!(w[1] < w[0]);
        }
    }
}

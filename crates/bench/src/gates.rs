//! CI gate validators for the machine-readable bench documents.
//!
//! Each emitted JSON artifact has a schema-checking twin here:
//! `BENCH_ofdm.json` (`bench-ofdm/v1`), `waterfall.json`
//! (`waterfall/v1`) and the experiment-lab report (`lab/v1`). The
//! `check_*_doc` functions validate an in-memory [`Value`]; the
//! `check_*_json` wrappers add file IO and prefix errors with the path.
//! The experiments binary delegates `--check-bench` / `--check-lab` to
//! these, and the failure paths are unit-tested below — a gate that only
//! ever sees happy-path input is not a gate.

use ofdm_standards::StandardId;
use serde::json::Value;

fn read_doc(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde::json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

fn finite(v: Option<f64>, what: &str) -> Result<f64, String> {
    let v = v.ok_or_else(|| format!("missing numeric {what}"))?;
    if !v.is_finite() {
        return Err(format!("{what} is not finite: {v}"));
    }
    Ok(v)
}

/// Validates a `bench-ofdm/v1` document: every required key present and
/// well-typed for all ten standards, the optional fault/engine/SIMD/
/// supervision sections sound when present, and every gated ratio within
/// its floor. This is the CI gate on the telemetry pipeline.
pub fn check_bench_doc(doc: &Value) -> Result<(), String> {
    if doc.get("schema").and_then(Value::as_str) != Some("bench-ofdm/v1") {
        return Err("missing or wrong `schema` (want \"bench-ofdm/v1\")".into());
    }
    for key in [
        "symbols",
        "behavioral_vs_rtl_ratio",
        "instrumented_overhead_ratio",
    ] {
        let v = doc
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing numeric `{key}`"))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(format!("`{key}` must be finite and positive, got {v}"));
        }
    }
    let standards = doc.get("standards").ok_or("missing `standards`")?;
    // The shim serializes non-finite f64 as `null` (caught as a missing
    // numeric), but a hand-edited or foreign file can still carry
    // garbage — reject any non-finite number explicitly.
    for id in StandardId::ALL {
        let key = id.key();
        let s = standards
            .get(key)
            .ok_or_else(|| format!("missing standard `{key}`"))?;
        for field in ["total_ns", "samples", "throughput_msps"] {
            finite(
                s.get(field).and_then(Value::as_f64),
                &format!("`{key}`.`{field}`"),
            )?;
        }
        let per_block = s
            .get("per_block_ns")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("`{key}` missing object `per_block_ns`"))?;
        if per_block.is_empty() {
            return Err(format!("`{key}`: `per_block_ns` is empty"));
        }
        for (block, ns) in per_block {
            finite(ns.as_f64(), &format!("`{key}` block `{block}` ns"))?;
        }
        let stages = s
            .get("stages_ns")
            .ok_or_else(|| format!("`{key}` missing `stages_ns`"))?;
        for stage in ["pilot", "map", "ifft", "cp"] {
            finite(
                stages.get(stage).and_then(Value::as_f64),
                &format!("`{key}` stage `{stage}`"),
            )?;
        }
    }
    // The fault sweep is optional (older files predate it) but must be
    // sound when present.
    if let Some(fs) = doc.get("fault_sweep") {
        for field in [
            "succeeded",
            "retried",
            "faulted",
            "panics_caught",
            "errors_caught",
        ] {
            finite(
                fs.get(field).and_then(Value::as_f64),
                &format!("`fault_sweep`.`{field}`"),
            )?;
        }
        let rate = finite(
            fs.get("survival_rate").and_then(Value::as_f64),
            "`fault_sweep`.`survival_rate`",
        )?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!(
                "`fault_sweep`.`survival_rate` must be in [0, 1], got {rate}"
            ));
        }
    }
    // The unified-engine guard: optional in files predating the ExecPlan
    // refactor, but when present the plan-driven engine must sit within
    // timing noise (< 5%) of the legacy shim entrypoint it replaced.
    if let Some(engine) = doc.get("exec_engine") {
        for field in ["shim_ns", "engine_ns"] {
            let v = finite(
                engine.get(field).and_then(Value::as_f64),
                &format!("`exec_engine`.`{field}`"),
            )?;
            if v <= 0.0 {
                return Err(format!("`exec_engine`.`{field}` must be positive, got {v}"));
            }
        }
        let ratio = finite(
            engine.get("ratio").and_then(Value::as_f64),
            "`exec_engine`.`ratio`",
        )?;
        if !(0.95..=1.05).contains(&ratio) {
            return Err(format!(
                "`exec_engine`.`ratio` must be within 5% of 1.0 (engine within \
                 noise of the shim), got {ratio}"
            ));
        }
    }
    // The SoA payoff gate: optional in files predating the split-layout
    // refactor; when present, every standard's batched kernel must at
    // minimum not regress the scalar path, the two headline standards
    // (802.11a and DVB-T) must clear 5x, and the family geomean 3x.
    if let Some(simd) = doc.get("simd_speedup") {
        let entries = simd
            .get("standards")
            .and_then(Value::as_object)
            .ok_or("`simd_speedup` missing object `standards`")?;
        if entries.len() != StandardId::ALL.len() {
            return Err(format!(
                "`simd_speedup`.`standards` has {} entries, want {}",
                entries.len(),
                StandardId::ALL.len()
            ));
        }
        for id in StandardId::ALL {
            let key = id.key();
            let s = simd
                .get("standards")
                .and_then(|e| e.get(key))
                .ok_or_else(|| format!("`simd_speedup` missing standard `{key}`"))?;
            for field in ["samples", "scalar_ns", "batched_ns"] {
                finite(
                    s.get(field).and_then(Value::as_f64),
                    &format!("`simd_speedup`.`{key}`.`{field}`"),
                )?;
            }
            let speedup = finite(
                s.get("speedup").and_then(Value::as_f64),
                &format!("`simd_speedup`.`{key}`.`speedup`"),
            )?;
            if speedup < 1.0 {
                return Err(format!(
                    "`simd_speedup`.`{key}`: batched kernel slower than the \
                     scalar path ({speedup:.2}x, floor 1x)"
                ));
            }
            let floor = match id {
                StandardId::Ieee80211a | StandardId::DvbT => 5.0,
                _ => 1.0,
            };
            if speedup < floor {
                return Err(format!(
                    "`simd_speedup`.`{key}`: {speedup:.2}x below the {floor}x floor"
                ));
            }
        }
        let geomean = finite(
            simd.get("geomean").and_then(Value::as_f64),
            "`simd_speedup`.`geomean`",
        )?;
        if geomean < 3.0 {
            return Err(format!(
                "`simd_speedup`.`geomean` {geomean:.2}x below the 3x family floor"
            ));
        }
    }
    // Same deal for the supervised-runtime gate: optional in older files,
    // validated when present.
    if let Some(sup) = doc.get("supervision") {
        let health = sup
            .get("health")
            .and_then(Value::as_str)
            .ok_or("`supervision` missing string `health`")?;
        if !["healthy", "degraded", "failed"].contains(&health) {
            return Err(format!("`supervision`.`health` is `{health}`"));
        }
        for field in [
            "breaker_trips",
            "bypassed_invocations",
            "deadline_kills",
            "resumed",
        ] {
            let v = finite(
                sup.get(field).and_then(Value::as_f64),
                &format!("`supervision`.`{field}`"),
            )?;
            if v < 0.0 {
                return Err(format!(
                    "`supervision`.`{field}` must be non-negative, got {v}"
                ));
            }
        }
    }
    Ok(())
}

/// `--check-bench FILE`: reads and validates an emitted `BENCH_ofdm.json`.
/// When a sibling `waterfall.json` exists (the CI smoke emits one next to
/// the bench file) its curves are validated too. Returns the human
/// summary lines to print.
pub fn check_bench_json(path: &str) -> Result<Vec<String>, String> {
    let doc = read_doc(path)?;
    check_bench_doc(&doc).map_err(|e| format!("{path}: {e}"))?;
    let mut messages = Vec::new();
    let sibling = std::path::Path::new(path).with_file_name("waterfall.json");
    if sibling.exists() {
        messages.extend(check_waterfall_json(&sibling.to_string_lossy())?);
    }
    messages.push(format!("{path}: ok ({} standards)", StandardId::ALL.len()));
    Ok(messages)
}

/// Validates a `waterfall/v1` document: shape, finite values, BER within
/// `[0, 1]` and consistent with its `errors/bits` tally, and per-standard
/// curves that descend with SNR (small slack per step for counting noise,
/// none for the endpoints). Returns the number of curves checked.
pub fn check_waterfall_doc(doc: &Value) -> Result<usize, String> {
    if doc.get("schema").and_then(Value::as_str) != Some("waterfall/v1") {
        return Err("missing or wrong `schema` (want \"waterfall/v1\")".into());
    }
    let snr = doc
        .get("snr_db")
        .and_then(Value::as_array)
        .ok_or("missing array `snr_db`")?;
    if snr.is_empty() {
        return Err("`snr_db` is empty".into());
    }
    let mut prev = f64::NEG_INFINITY;
    for (i, v) in snr.iter().enumerate() {
        let db = v
            .as_f64()
            .filter(|d| d.is_finite())
            .ok_or_else(|| format!("`snr_db[{i}]` is not a finite number"))?;
        if db <= prev {
            return Err(format!("`snr_db` must increase at index {i}"));
        }
        prev = db;
    }
    let standards = doc
        .get("standards")
        .and_then(Value::as_object)
        .ok_or("missing object `standards`")?;
    if standards.is_empty() {
        return Err("`standards` is empty".into());
    }
    for (key, curve) in standards {
        let series = |field: &str| -> Result<Vec<f64>, String> {
            let arr = curve
                .get(field)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("`{key}` missing array `{field}`"))?;
            if arr.len() != snr.len() {
                return Err(format!(
                    "`{key}`.`{field}` has {} points, want {}",
                    arr.len(),
                    snr.len()
                ));
            }
            arr.iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| format!("`{key}`.`{field}[{i}]` is not finite"))
                })
                .collect()
        };
        let ber = series("ber")?;
        let errors = series("errors")?;
        let bits = series("bits")?;
        for i in 0..snr.len() {
            if !(0.0..=1.0).contains(&ber[i]) {
                return Err(format!("`{key}`.`ber[{i}]` outside [0, 1]: {}", ber[i]));
            }
            if bits[i] <= 0.0 || errors[i] < 0.0 || errors[i] > bits[i] {
                return Err(format!(
                    "`{key}` point {i}: bad tally {}/{}",
                    errors[i], bits[i]
                ));
            }
            if (ber[i] - errors[i] / bits[i]).abs() > 1e-9 {
                return Err(format!("`{key}`.`ber[{i}]` inconsistent with errors/bits"));
            }
        }
        for (i, w) in ber.windows(2).enumerate() {
            if w[1] > w[0] + (0.05 * w[0]).max(1e-3) {
                return Err(format!(
                    "`{key}`: BER rises from {:.3e} to {:.3e} at SNR index {}",
                    w[0],
                    w[1],
                    i + 1
                ));
            }
        }
        let (first, last) = (ber[0], ber[snr.len() - 1]);
        if last >= first && first > 0.0 {
            return Err(format!(
                "`{key}`: waterfall does not descend ({first:.3e} → {last:.3e})"
            ));
        }
    }
    Ok(standards.len())
}

/// `--waterfall`'s checking twin: reads and validates a `waterfall/v1`
/// file, returning the summary lines to print.
pub fn check_waterfall_json(path: &str) -> Result<Vec<String>, String> {
    let doc = read_doc(path)?;
    let curves = check_waterfall_doc(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok(vec![format!("{path}: ok ({curves} curves)")])
}

/// Validates a `lab/v1` experiment report: schema and identity fields,
/// a non-empty cell matrix whose deterministic metrics all carry finite
/// sample values with consistent percentile stats, declarative assertion
/// results whose `pass` flags agree with the overall verdict — and a
/// `pass` verdict, because a lab report that failed its own assertions
/// must fail the gate that checks it.
pub fn check_lab_doc(doc: &Value) -> Result<(usize, usize), String> {
    if doc.get("schema").and_then(Value::as_str) != Some("lab/v1") {
        return Err("missing or wrong `schema` (want \"lab/v1\")".into());
    }
    for key in ["name", "workload"] {
        if doc
            .get(key)
            .and_then(Value::as_str)
            .is_none_or(|s| s.is_empty())
        {
            return Err(format!("missing or empty string `{key}`"));
        }
    }
    doc.get("base_seed")
        .and_then(Value::as_u64)
        .ok_or("missing integer `base_seed`")?;
    let repeats = doc
        .get("repeats")
        .and_then(Value::as_u64)
        .ok_or("missing integer `repeats`")?;
    if repeats == 0 {
        return Err("`repeats` must be at least 1".into());
    }
    let names = |key: &str| -> Result<usize, String> {
        let arr = doc
            .get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("missing array `{key}`"))?;
        if arr.is_empty() {
            return Err(format!("`{key}` is empty"));
        }
        for (i, v) in arr.iter().enumerate() {
            if v.as_str().is_none_or(|s| s.is_empty()) {
                return Err(format!("`{key}[{i}]` is not a non-empty string"));
            }
        }
        Ok(arr.len())
    };
    let n_scenarios = names("scenarios")?;
    let n_variants = names("variants")?;
    let cells = doc
        .get("cells")
        .and_then(Value::as_array)
        .ok_or("missing array `cells`")?;
    if cells.len() != n_scenarios * n_variants {
        return Err(format!(
            "`cells` has {} entries, want {} ({n_scenarios} scenarios x {n_variants} variants)",
            cells.len(),
            n_scenarios * n_variants
        ));
    }
    for (i, cell) in cells.iter().enumerate() {
        for key in ["scenario", "variant"] {
            if cell.get(key).and_then(Value::as_str).is_none() {
                return Err(format!("`cells[{i}]` missing string `{key}`"));
            }
        }
        cell.get("seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("`cells[{i}]` missing integer `seed`"))?;
        let metrics = cell
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("`cells[{i}]` missing object `metrics`"))?;
        for (name, metric) in metrics {
            let what = format!("`cells[{i}]` metric `{name}`");
            let values = metric
                .get("values")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("{what} missing array `values`"))?;
            if values.len() != repeats as usize {
                return Err(format!(
                    "{what} has {} values, want {repeats}",
                    values.len()
                ));
            }
            for (r, v) in values.iter().enumerate() {
                finite(v.as_f64(), &format!("{what} `values[{r}]`"))?;
            }
            let stats = metric
                .get("stats")
                .ok_or_else(|| format!("{what} missing object `stats`"))?;
            let count = finite(stats.get("count").and_then(Value::as_f64), &what)?;
            if count as usize != values.len() {
                return Err(format!("{what}: stats count {count} != {}", values.len()));
            }
            for stat in ["min", "max", "mean", "p50", "p95", "p99"] {
                finite(
                    stats.get(stat).and_then(Value::as_f64),
                    &format!("{what} stat `{stat}`"),
                )?;
            }
        }
        if let Some(volatile) = cell.get("volatile") {
            let arr = volatile
                .as_array()
                .ok_or_else(|| format!("`cells[{i}]`.`volatile` is not an array"))?;
            for v in arr {
                if v.as_str().is_none() {
                    return Err(format!("`cells[{i}]`.`volatile` has a non-string entry"));
                }
            }
        }
    }
    let assertions = doc
        .get("assertions")
        .and_then(Value::as_array)
        .ok_or("missing array `assertions`")?;
    let mut all_pass = true;
    for (i, a) in assertions.iter().enumerate() {
        if a.get("check").and_then(Value::as_str).is_none() {
            return Err(format!("`assertions[{i}]` missing string `check`"));
        }
        let pass = a
            .get("pass")
            .and_then(Value::as_bool)
            .ok_or_else(|| format!("`assertions[{i}]` missing bool `pass`"))?;
        all_pass &= pass;
    }
    let verdict = doc
        .get("verdict")
        .and_then(Value::as_str)
        .ok_or("missing string `verdict`")?;
    let want = if all_pass { "pass" } else { "fail" };
    if verdict != want {
        return Err(format!(
            "`verdict` is `{verdict}` but the assertion results say `{want}`"
        ));
    }
    if verdict != "pass" {
        return Err("report verdict is `fail`".into());
    }
    Ok((cells.len(), assertions.len()))
}

/// `--check-lab FILE`: reads and validates a `lab/v1` report file,
/// returning the summary lines to print.
pub fn check_lab_json(path: &str) -> Result<Vec<String>, String> {
    let doc = read_doc(path)?;
    let (cells, assertions) = check_lab_doc(&doc).map_err(|e| format!("{path}: {e}"))?;
    Ok(vec![format!(
        "{path}: ok ({cells} cells, {assertions} assertions)"
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(members: Vec<(&str, Value)>) -> Value {
        Value::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A minimal document that passes `check_bench_doc`: the three scalar
    /// ratios plus every standard's timing block. Tests mutate one field
    /// at a time and assert the validator names it.
    fn valid_bench_doc() -> Value {
        let standard = || {
            obj(vec![
                ("total_ns", Value::from(1.0e6)),
                ("samples", Value::from(4096.0)),
                ("throughput_msps", Value::from(12.5)),
                ("per_block_ns", obj(vec![("tx", Value::from(9.0e5))])),
                (
                    "stages_ns",
                    obj(vec![
                        ("pilot", Value::from(1.0e4)),
                        ("map", Value::from(2.0e4)),
                        ("ifft", Value::from(6.0e5)),
                        ("cp", Value::from(5.0e4)),
                    ]),
                ),
            ])
        };
        obj(vec![
            ("schema", Value::from("bench-ofdm/v1")),
            ("symbols", Value::from(4.0)),
            ("behavioral_vs_rtl_ratio", Value::from(0.02)),
            ("instrumented_overhead_ratio", Value::from(1.01)),
            (
                "standards",
                Value::Object(
                    StandardId::ALL
                        .iter()
                        .map(|id| (id.key().to_string(), standard()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Replaces `doc.<path>` (dot-separated member path) with `v`.
    fn set(doc: &mut Value, path: &str, v: Value) {
        let mut cur = doc;
        let mut parts = path.split('.').peekable();
        while let Some(key) = parts.next() {
            let Value::Object(members) = cur else {
                panic!("set: `{key}` parent is not an object")
            };
            if parts.peek().is_none() {
                match members.iter_mut().find(|(k, _)| k == key) {
                    Some(slot) => slot.1 = v,
                    None => members.push((key.into(), v)),
                }
                return;
            }
            cur = members
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, child)| child)
                .expect("set: missing intermediate member");
        }
    }

    #[test]
    fn bench_doc_happy_path_passes() {
        assert_eq!(check_bench_doc(&valid_bench_doc()), Ok(()));
    }

    #[test]
    fn bench_doc_rejects_missing_schema_and_keys() {
        let mut doc = valid_bench_doc();
        set(&mut doc, "schema", Value::from("bench-ofdm/v2"));
        let err = check_bench_doc(&doc).expect_err("wrong schema");
        assert!(err.contains("schema"), "{err}");

        let mut doc = valid_bench_doc();
        set(&mut doc, "symbols", Value::Null);
        let err = check_bench_doc(&doc).expect_err("missing key");
        assert!(err.contains("symbols"), "{err}");

        // A standard with no `stages_ns.ifft` names the standard and stage.
        let mut doc = valid_bench_doc();
        set(&mut doc, "standards.dab.stages_ns.ifft", Value::Null);
        let err = check_bench_doc(&doc).expect_err("missing stage");
        assert!(err.contains("dab") && err.contains("ifft"), "{err}");
    }

    #[test]
    fn bench_doc_rejects_non_finite_values() {
        // The shim parses `null` where a non-finite f64 was serialized;
        // `Value::from(f64::NAN)` models a hand-built in-memory document.
        let mut doc = valid_bench_doc();
        set(&mut doc, "standards.adsl.total_ns", Value::from(f64::NAN));
        let err = check_bench_doc(&doc).expect_err("NaN total_ns");
        assert!(err.contains("adsl"), "{err}");

        let mut doc = valid_bench_doc();
        set(
            &mut doc,
            "standards.vdsl.per_block_ns.tx",
            Value::from(f64::INFINITY),
        );
        let err = check_bench_doc(&doc).expect_err("inf block ns");
        assert!(err.contains("not finite"), "{err}");
    }

    #[test]
    fn bench_doc_rejects_out_of_range_ratios() {
        let mut doc = valid_bench_doc();
        set(
            &mut doc,
            "exec_engine",
            obj(vec![
                ("shim_ns", Value::from(1.0e6)),
                ("engine_ns", Value::from(1.2e6)),
                ("ratio", Value::from(1.2)),
            ]),
        );
        let err = check_bench_doc(&doc).expect_err("ratio out of band");
        assert!(err.contains("within 5%"), "{err}");

        let mut doc = valid_bench_doc();
        set(
            &mut doc,
            "fault_sweep",
            obj(vec![
                ("succeeded", Value::from(32.0)),
                ("retried", Value::from(16.0)),
                ("faulted", Value::from(16.0)),
                ("panics_caught", Value::from(16.0)),
                ("errors_caught", Value::from(32.0)),
                ("survival_rate", Value::from(1.5)),
            ]),
        );
        let err = check_bench_doc(&doc).expect_err("survival_rate out of range");
        assert!(err.contains("survival_rate"), "{err}");
    }

    #[test]
    fn bench_doc_gates_simd_floors() {
        let simd_entry = |speedup: f64| {
            obj(vec![
                ("samples", Value::from(4096.0)),
                ("scalar_ns", Value::from(1.0e6)),
                ("batched_ns", Value::from(1.0e6 / speedup)),
                ("speedup", Value::from(speedup)),
            ])
        };
        let mut doc = valid_bench_doc();
        set(
            &mut doc,
            "simd_speedup",
            obj(vec![
                (
                    "standards",
                    Value::Object(
                        StandardId::ALL
                            .iter()
                            .map(|id| (id.key().to_string(), simd_entry(6.0)))
                            .collect(),
                    ),
                ),
                ("geomean", Value::from(6.0)),
            ]),
        );
        assert_eq!(check_bench_doc(&doc), Ok(()));
        // DVB-T below its 5x headline floor trips the gate even though it
        // clears the family-wide 1x floor.
        set(&mut doc, "simd_speedup.standards.dvb-t", simd_entry(2.0));
        let err = check_bench_doc(&doc).expect_err("headline floor");
        assert!(err.contains("5x floor"), "{err}");
    }

    #[test]
    fn waterfall_doc_rejects_rising_curve() {
        let doc = obj(vec![
            ("schema", Value::from("waterfall/v1")),
            (
                "snr_db",
                Value::Array(vec![Value::from(0.0), Value::from(6.0)]),
            ),
            (
                "standards",
                obj(vec![(
                    "dab",
                    obj(vec![
                        (
                            "ber",
                            Value::Array(vec![Value::from(0.1), Value::from(0.2)]),
                        ),
                        (
                            "errors",
                            Value::Array(vec![Value::from(100.0), Value::from(200.0)]),
                        ),
                        (
                            "bits",
                            Value::Array(vec![Value::from(1000.0), Value::from(1000.0)]),
                        ),
                    ]),
                )]),
            ),
        ]);
        let err = check_waterfall_doc(&doc).expect_err("rising BER");
        assert!(err.contains("rises"), "{err}");
    }
}

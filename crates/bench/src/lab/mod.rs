//! The declarative experiment lab: experiments as data.
//!
//! An [`ExperimentSpec`] (JSON, schema `lab-spec/v1`) declares scenarios
//! × variants × repeats plus a base seed and declarative assertions; the
//! engine here expands the cross-product into a deterministic flat run
//! matrix, executes it over [`rfsim::SweepPlan`] (reusing its telemetry,
//! supervision and checkpoint/resume machinery), aggregates per-cell
//! metrics with p50/p95/p99 percentiles, and renders a byte-stable
//! `lab/v1` JSON report plus a markdown comparison table.
//!
//! Determinism contract: every *deterministic* metric is a pure function
//! of `(spec, cell seed)`, so the `lab/v1` document is byte-stable
//! across reruns. Wall-clock measurements are declared *volatile* by
//! their kernel ([`Metric::volatile`]); they appear in rendered tables
//! but never in the JSON cells (only their names, under `volatile`).
//!
//! Layering: spec parsing in [`spec`], kernels in [`workloads`],
//! aggregation/assertions/rendering in [`report`]. See DESIGN.md §3.9.

pub mod report;
pub mod spec;
pub mod workloads;

pub use report::{AssertionOutcome, CellAgg, LabRun, MetricAgg};
pub use spec::{Assertion, AxisPoint, CellSel, Direction, ExperimentSpec, Op};

use rfsim::{scenario_seed, CheckpointPayload, SimError, SweepCheckpoint, SweepPlan};
use serde::json::Value;
use std::path::Path;

/// One measured quantity from a workload kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable metric name (assertion references use it).
    pub name: String,
    /// The measured value (must be finite).
    pub value: f64,
    /// `true` for wall-clock measurements: rendered, never serialized
    /// into `lab/v1` cells, and not assertable.
    pub volatile: bool,
}

impl Metric {
    /// A deterministic metric — a pure function of `(spec, seed)`.
    pub fn new(name: &str, value: f64) -> Metric {
        Metric {
            name: name.to_owned(),
            value,
            volatile: false,
        }
    }

    /// A volatile (wall-clock) metric.
    pub fn volatile(name: &str, value: f64) -> Metric {
        Metric {
            name: name.to_owned(),
            value,
            volatile: true,
        }
    }
}

/// The merged per-cell configuration a kernel reads: spec `defaults`,
/// overlaid by the scenario's fields, overlaid by the variant's fields.
#[derive(Debug, Clone)]
pub struct CellCfg {
    fields: Vec<(String, Value)>,
}

impl CellCfg {
    /// Builds the merged view (later layers win by key).
    pub fn merge(layers: &[&[(String, Value)]]) -> CellCfg {
        let mut fields: Vec<(String, Value)> = Vec::new();
        for layer in layers {
            for (k, v) in *layer {
                match fields.iter_mut().find(|(key, _)| key == k) {
                    Some(slot) => slot.1 = v.clone(),
                    None => fields.push((k.clone(), v.clone())),
                }
            }
        }
        CellCfg { fields }
    }

    /// Raw field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Required string field.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a string.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing string field `{key}`"))
    }

    /// String field with a default.
    ///
    /// # Errors
    ///
    /// When the field is present but not a string.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> Result<&'a str, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("field `{key}` is not a string")),
        }
    }

    /// Required finite numeric field.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a finite number.
    pub fn f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Value::as_f64)
            .filter(|v| v.is_finite())
            .ok_or_else(|| format!("missing finite numeric field `{key}`"))
    }

    /// Numeric field with a default.
    ///
    /// # Errors
    ///
    /// When the field is present but not a finite number.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("field `{key}` is not a finite number")),
        }
    }

    /// Required unsigned integer field.
    ///
    /// # Errors
    ///
    /// When the field is missing or not a non-negative integer.
    pub fn u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing integer field `{key}`"))
    }

    /// Unsigned integer field with a default.
    ///
    /// # Errors
    ///
    /// When the field is present but not a non-negative integer.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .ok_or_else(|| format!("field `{key}` is not an integer")),
        }
    }

    /// `usize` convenience over [`CellCfg::u64_or`].
    ///
    /// # Errors
    ///
    /// When the field is present but not a non-negative integer.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        Ok(self.u64_or(key, default as u64)? as usize)
    }

    /// Array-of-pairs field (`[[a, b], …]`), e.g. a power-delay profile.
    ///
    /// # Errors
    ///
    /// When the field is present but not an array of 2-element numeric
    /// arrays.
    pub fn pairs_or(&self, key: &str, default: &[(f64, f64)]) -> Result<Vec<(f64, f64)>, String> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or_else(|| format!("field `{key}` is not an array"))?;
                arr.iter()
                    .map(|p| {
                        let pair = p.as_array().filter(|a| a.len() == 2);
                        match pair {
                            Some(a) => match (a[0].as_f64(), a[1].as_f64()) {
                                (Some(x), Some(y)) if x.is_finite() && y.is_finite() => Ok((x, y)),
                                _ => Err(format!("field `{key}` has a non-numeric pair")),
                            },
                            None => Err(format!("field `{key}` has a non-pair entry")),
                        }
                    })
                    .collect()
            }
        }
    }
}

/// One cell-repeat's metrics, as produced by a kernel — the unit the
/// sweep pool shards and the checkpoint layer persists.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRun(pub Vec<Metric>);

impl CheckpointPayload for CellRun {
    fn to_checkpoint_value(&self) -> Value {
        Value::Array(
            self.0
                .iter()
                .map(|m| {
                    Value::Object(vec![
                        ("name".into(), Value::from(m.name.as_str())),
                        ("value".into(), Value::from(m.value)),
                        ("volatile".into(), Value::from(m.volatile)),
                    ])
                })
                .collect(),
        )
    }

    fn from_checkpoint_value(value: &Value) -> Option<Self> {
        let arr = value.as_array()?;
        let mut metrics = Vec::with_capacity(arr.len());
        for m in arr {
            metrics.push(Metric {
                name: m.get("name")?.as_str()?.to_owned(),
                value: m.get("value")?.as_f64()?,
                volatile: m.get("volatile")?.as_bool()?,
            });
        }
        Some(CellRun(metrics))
    }
}

/// Engine options orthogonal to the spec itself.
#[derive(Debug, Clone, Default)]
pub struct LabOptions {
    /// Override the spec's worker-thread count.
    pub threads: Option<usize>,
    /// Persist completed cell-repeats here and resume across calls.
    pub checkpoint: Option<std::path::PathBuf>,
}

/// Runs one flat cell-repeat of `spec`: merges the config layers,
/// resolves the workload (variant override beats scenario override beats
/// spec default) and dispatches to the kernel with the derived cell
/// seed.
///
/// # Errors
///
/// Kernel failures, unknown workloads, or a kernel emitting a non-finite
/// metric.
pub fn run_flat(spec: &ExperimentSpec, flat: usize) -> Result<CellRun, String> {
    let (s, v, _r) = spec.decompose(flat);
    let scenario = &spec.scenarios[s];
    let variant = &spec.variants[v];
    let cfg = CellCfg::merge(&[&spec.defaults, &scenario.fields, &variant.fields]);
    let workload = variant
        .workload
        .as_deref()
        .or(scenario.workload.as_deref())
        .unwrap_or(&spec.workload);
    let seed = scenario_seed(spec.base_seed, flat);
    let metrics = workloads::run(workload, &cfg, seed).map_err(|e| {
        format!(
            "cell ({}, {}): workload `{workload}`: {e}",
            scenario.label, variant.label
        )
    })?;
    for m in &metrics {
        if !m.value.is_finite() {
            return Err(format!(
                "cell ({}, {}): metric `{}` is not finite: {}",
                scenario.label, variant.label, m.name, m.value
            ));
        }
    }
    Ok(CellRun(metrics))
}

/// Executes the full spec: expands the matrix, shards it over a
/// [`SweepPlan`] (checkpointed when [`LabOptions::checkpoint`] is set),
/// aggregates percentiles per cell and evaluates the declarative
/// assertions.
///
/// # Errors
///
/// Spec-shape problems (zero cells), the first failing cell, or a
/// corrupt checkpoint.
pub fn run_spec(spec: &ExperimentSpec, options: &LabOptions) -> Result<LabRun, String> {
    let count = spec.run_count();
    if count == 0 {
        return Err("empty run matrix".into());
    }
    let threads = options.threads.unwrap_or(spec.threads);
    let mut plan = SweepPlan::new(count).with_telemetry(true);
    if threads > 0 {
        plan = plan.threads(threads);
    }
    let (runs, sweep) = match &options.checkpoint {
        None => plan.run_fail_fast(|flat| run_flat(spec, flat))?,
        Some(path) => run_checkpointed(spec, &plan, path)?,
    };
    report::aggregate(spec, runs, sweep)
}

fn run_checkpointed(
    spec: &ExperimentSpec,
    plan: &SweepPlan,
    path: &Path,
) -> Result<(Vec<CellRun>, rfsim::SweepReport), String> {
    let mut ckpt = SweepCheckpoint::load(path, &spec.checkpoint_label(), spec.run_count())
        .map_err(|e| e.to_string())?;
    let (outcomes, sweep) = plan.run_checkpointed(&mut ckpt, |flat, _attempt, _ctx| {
        run_flat(spec, flat).map_err(|message| SimError::BlockFailure {
            block: "lab".into(),
            message,
        })
    });
    let mut runs = Vec::with_capacity(outcomes.len());
    for (flat, outcome) in outcomes.iter().enumerate() {
        match outcome.result() {
            Some(r) => runs.push(r.clone()),
            None => {
                let (s, v, rep) = spec.decompose(flat);
                return Err(format!(
                    "cell ({}, {}) repeat {rep} faulted every attempt",
                    spec.scenarios[s].label, spec.variants[v].label
                ));
            }
        }
    }
    // The matrix is complete — the checkpoint has served its purpose.
    ckpt.discard().map_err(|e| format!("checkpoint: {e}"))?;
    Ok((runs, sweep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_cfg_merge_later_layers_win() {
        let base = vec![
            ("a".to_owned(), Value::from(1.0)),
            ("b".to_owned(), Value::from("x")),
        ];
        let over = vec![("a".to_owned(), Value::from(2.0))];
        let cfg = CellCfg::merge(&[&base, &over]);
        assert_eq!(cfg.f64("a"), Ok(2.0));
        assert_eq!(cfg.str("b"), Ok("x"));
        assert!(cfg.f64("c").is_err());
        assert_eq!(cfg.f64_or("c", 7.0), Ok(7.0));
        assert_eq!(cfg.usize_or("c", 3), Ok(3));
    }

    #[test]
    fn cell_run_checkpoint_roundtrip() {
        let run = CellRun(vec![
            Metric::new("ber", 0.015625),
            Metric::volatile("t_s", 0.25),
        ]);
        let restored =
            CellRun::from_checkpoint_value(&run.to_checkpoint_value()).expect("roundtrips");
        assert_eq!(restored, run);
        assert!(CellRun::from_checkpoint_value(&Value::from(3.0)).is_none());
    }
}

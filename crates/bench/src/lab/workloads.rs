//! Workload kernels for the experiment lab.
//!
//! Each kernel is a pure function of `(cell config, seed)` returning a
//! flat list of [`Metric`]s; the legacy E1–E13 experiment bodies live
//! here, parameterized by [`CellCfg`] fields so the spec files under
//! `examples/lab/` can reproduce them bit-identically (the legacy seeds
//! are spec data, not code). Wall-clock measurements are emitted as
//! [`Metric::volatile`] and never enter the byte-stable `lab/v1` cells.
//!
//! The service kernels (E12/E13) drive the real `rfsim-server` /
//! `rfsim-cli` binaries over TCP — the bench crate sits *below*
//! `ofdm-server` in the dependency graph, so the cross-process contract
//! is exercised the same way `ci.sh` does it: as sibling processes,
//! located next to the current executable (override with
//! `RFSIM_BIN_DIR`).

use super::{CellCfg, Metric};
use crate::waterfall::{
    measure_ber_point, run_waterfall, waterfall_json, ChannelProfile, WaterfallSpec,
};
use crate::{
    evm_after_gain_correction, loopback_errors, payload_bits, time_per_run, transmit_frame,
};
use ofdm_core::source::OfdmSource;
use ofdm_core::MotherModel;
use ofdm_rtl::{FxFormat, Tx80211aRtl};
use ofdm_rx::receiver::ReferenceReceiver;
use ofdm_standards::ieee80211a::{self, WlanRate};
use ofdm_standards::{dab, default_params, StandardId};
use rfsim::prelude::*;
use serde::json::Value;
use std::path::PathBuf;
use std::time::Duration;

/// Dispatches a cell to its workload kernel.
///
/// # Errors
///
/// Unknown workload names, malformed config fields, or kernel failures.
pub fn run(name: &str, cfg: &CellCfg, seed: u64) -> Result<Vec<Metric>, String> {
    match name {
        "loopback" => loopback(cfg, seed),
        "rf_cosim" => rf_cosim(cfg),
        "tx_timing" => tx_timing(cfg),
        "design_effort" => design_effort(cfg),
        "rtl_equivalence" => rtl_equivalence(cfg),
        "evm_chain" => evm_chain(cfg),
        "coded_ber" => coded_ber(cfg),
        "doppler_ber" => doppler_ber(cfg),
        "fault_sweep" => fault_sweep_metrics(),
        "watchdog" => watchdog(cfg),
        "breaker_degraded" => breaker_degraded(),
        "breaker_fail_fast" => breaker_fail_fast(),
        "checkpoint_resume" => checkpoint_resume(cfg, seed),
        "ber_grid" => ber_grid(cfg),
        "service_roundtrip" => service(cfg, seed, false),
        "service_chaos" => service(cfg, seed, true),
        other => Err(format!("unknown workload `{other}`")),
    }
}

fn standard(cfg: &CellCfg) -> Result<StandardId, String> {
    let key = cfg.str("standard")?;
    StandardId::from_key(key).ok_or_else(|| format!("unknown standard `{key}`"))
}

fn wlan_rate(cfg: &CellCfg, default: WlanRate) -> Result<WlanRate, String> {
    let name = cfg.str_or("rate", "")?;
    if name.is_empty() {
        return Ok(default);
    }
    WlanRate::ALL
        .iter()
        .copied()
        .find(|r| format!("{r:?}") == name)
        .ok_or_else(|| format!("unknown 802.11a rate `{name}`"))
}

fn bool_or(cfg: &CellCfg, key: &str, default: bool) -> Result<bool, String> {
    match cfg.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("field `{key}` is not a boolean")),
    }
}

// ---------------------------------------------------------------------
// E1 — reconfiguration matrix: zero-error loopback per standard.
// ---------------------------------------------------------------------

fn loopback(cfg: &CellCfg, seed: u64) -> Result<Vec<Metric>, String> {
    let id = standard(cfg)?;
    let p = default_params(id);
    // Legacy E1 fills ≥4 OFDM symbols so PAPR reflects random data.
    let n_bits = cfg.usize_or("n_bits", 4 * p.nominal_bits_per_symbol().max(100))?;
    let payload_seed = cfg.u64_or("payload_seed", seed)?;
    let frame = transmit_frame(&p, n_bits, payload_seed);
    let errors = loopback_errors(&p, n_bits, payload_seed);
    Ok(vec![
        Metric::new("loopback_errors", errors as f64),
        Metric::new("papr_db", frame.signal().papr_db()),
        Metric::new("fft_size", p.map.fft_size() as f64),
        Metric::new("guard_samples", p.guard.samples(p.map.fft_size()) as f64),
        Metric::new("data_carriers", p.map.data_count() as f64),
        Metric::new("fs_mhz", p.sample_rate / 1e6),
        Metric::new("t_sym_us", p.symbol_duration() * 1e6),
    ])
}

// ---------------------------------------------------------------------
// E2 — RF co-simulation: OBW, out-of-band regrowth and EVM through a
// 4x-oversampled Rapp PA lineup, per standard × input back-off.
// ---------------------------------------------------------------------

fn rf_cosim(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    use ofdm_dsp::resample::Resampler;
    use ofdm_dsp::spectrum::band_power;

    let id = standard(cfg)?;
    let ibo_db = cfg.f64("ibo_db")?;
    let payload_seed = cfg.u64_or("payload_seed", 5)?;
    let n_symbols = cfg.usize_or("n_symbols", 6)?;
    let p = default_params(id);
    let frame = transmit_frame(
        &p,
        n_symbols * p.nominal_bits_per_symbol().max(100),
        payload_seed,
    );

    // The nominal occupied band from the carrier allocation.
    let spacing = p.subcarrier_spacing();
    let carriers = p.map.data_carriers();
    let f_hi = (*carriers.last().ok_or("empty carrier map")? as f64 + 1.0) * spacing;
    let f_lo = if p.map.is_hermitian() {
        // A real line signal occupies ± the tone band.
        -f_hi
    } else {
        (carriers[0] as f64 - 1.0) * spacing
    };

    // 4× oversampled path: spectral regrowth lands inside Nyquist.
    let mut up = Resampler::new(4, 1, 16);
    let oversampled = Signal::new(up.process(&frame.samples()), p.sample_rate * 4.0);

    let mut g = Graph::new();
    let src = g.add(SamplePlayback::new(oversampled.clone()));
    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(ibo_db));
    let sa = g.add(SpectrumAnalyzer::new(512));
    g.chain(&[src, pa, sa]).map_err(|e| e.to_string())?;
    g.run().map_err(|e| e.to_string())?;
    let sa_ref = g.block::<SpectrumAnalyzer>(sa).ok_or("analyzer missing")?;
    let psd = sa_ref.psd().ok_or("analyzer never ran")?.to_vec();
    let fs = p.sample_rate * 4.0;
    let total = band_power(&psd, fs, -fs / 2.0, fs / 2.0);
    let in_band = band_power(&psd, fs, f_lo, f_hi);
    let oob_db = 10.0 * ((total - in_band).max(1e-20) / total).log10();

    // EVM at baseband rate (the PA is memoryless, so EVM is rate
    // independent).
    let mut g = Graph::new();
    let src = g.add(SamplePlayback::new(frame.signal().clone()));
    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(ibo_db));
    g.chain(&[src, pa]).map_err(|e| e.to_string())?;
    g.run().map_err(|e| e.to_string())?;
    let out = g.output(pa).ok_or("pa never ran")?.clone();
    let evm_db = evm_after_gain_correction(&p, &frame, &out, 4);

    // Occupied bandwidth of the clean oversampled signal.
    let mut g = Graph::new();
    let src = g.add(SamplePlayback::new(oversampled));
    let sa = g.add(SpectrumAnalyzer::new(512));
    g.chain(&[src, sa]).map_err(|e| e.to_string())?;
    g.run().map_err(|e| e.to_string())?;
    let obw = g
        .block::<SpectrumAnalyzer>(sa)
        .ok_or("analyzer missing")?
        .occupied_bandwidth(0.99)
        .ok_or("analyzer never ran")?;

    Ok(vec![
        Metric::new("obw_mhz", obw / 1e6),
        Metric::new("oob_db", oob_db),
        Metric::new("evm_db", evm_db),
    ])
}

// ---------------------------------------------------------------------
// E3 — behavioral vs RT-level simulation time, and batch vs streaming
// scheduling. Everything here is wall clock, hence volatile.
// ---------------------------------------------------------------------

fn tx_timing(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let rate = wlan_rate(cfg, WlanRate::Mbps12)?;
    let n_symbols = cfg.usize_or("n_symbols", 50)?;
    let iters = cfg.usize_or("iters", 3)?;
    let bits = n_symbols * rate.n_cbps() / 2 - 6; // rate 1/2, minus tail
    let payload = payload_bits(bits, cfg.u64_or("payload_seed", 3)?);

    let mut beh = MotherModel::new(ieee80211a::params(rate)).map_err(|e| e.to_string())?;
    let t_beh = time_per_run(
        || {
            beh.transmit(&payload).expect("transmits");
        },
        iters,
    );
    let rtl = Tx80211aRtl::new(rate);
    let t_rtl = time_per_run(
        || {
            rtl.transmit(&payload);
        },
        iters,
    );

    let n_samples = 320 + n_symbols * 80;
    let rf_once = |use_ofdm: bool| -> f64 {
        time_per_run(
            || {
                let mut g = Graph::new();
                let src = if use_ofdm {
                    g.add(OfdmSource::new(ieee80211a::params(rate), bits, 1).expect("valid preset"))
                } else {
                    g.add(ToneSource::new(1e6, 20e6, n_samples))
                };
                let dac = g.add(Dac::new(10, 4.0));
                let lo = g.add(LocalOscillator::new(0.0, 100.0, 3));
                let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
                let sa = g.add(SpectrumAnalyzer::new(256));
                g.chain(&[src, dac, lo, pa, sa]).expect("wires");
                g.run().expect("runs");
            },
            iters,
        )
    };
    let t_rf_tone = rf_once(false);
    let t_rf_ofdm = rf_once(true);

    // Batch vs chunked streaming on a streaming-capable chain
    // (80-sample chunks ≙ one symbol).
    let chain_once = |streaming: bool| -> f64 {
        time_per_run(
            || {
                let mut g = Graph::new();
                let src = g
                    .add(OfdmSource::new(ieee80211a::params(rate), bits, 1).expect("valid preset"));
                let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
                let meter = g.add(PowerMeter::new());
                g.chain(&[src, pa, meter]).expect("wires");
                if streaming {
                    g.run_streaming(80).expect("runs");
                } else {
                    g.run().expect("runs");
                }
            },
            iters,
        )
    };
    let t_batch = chain_once(false);
    let t_stream = chain_once(true);

    Ok(vec![
        Metric::new("bits", bits as f64),
        Metric::volatile("t_behavioral_s", t_beh),
        Metric::volatile("t_rtl_s", t_rtl),
        Metric::volatile("rtl_over_behavioral", t_rtl / t_beh.max(1e-12)),
        Metric::volatile("t_rf_tone_s", t_rf_tone),
        Metric::volatile("t_rf_ofdm_s", t_rf_ofdm),
        Metric::volatile("t_batch_s", t_batch),
        Metric::volatile("t_stream_s", t_stream),
        Metric::volatile("stream_over_batch", t_stream / t_batch.max(1e-12)),
    ])
}

// ---------------------------------------------------------------------
// E4 — design-effort proxy: a standard is a parameter set.
// ---------------------------------------------------------------------

fn design_effort(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let id = standard(cfg)?;
    let p = default_params(id);
    let mut mechanisms = 0usize;
    if p.map.is_hermitian() {
        mechanisms += 1;
    }
    if p.differential {
        mechanisms += 1;
    }
    if !p.pilots.is_none() {
        mechanisms += 1;
    }
    if p.scrambler.is_some() {
        mechanisms += 1;
    }
    if p.rs_outer.is_some() {
        mechanisms += 1;
    }
    if p.conv_code.is_some() {
        mechanisms += 1;
    }
    if !matches!(p.interleaver, ofdm_core::interleave::InterleaverSpec::None) {
        mechanisms += 1;
    }
    if !p.preamble.is_empty() {
        mechanisms += 1;
    }
    Ok(vec![
        Metric::new("preset_debug_bytes", format!("{p:?}").len() as f64),
        Metric::new("mechanism_count", mechanisms as f64),
    ])
}

// ---------------------------------------------------------------------
// E5 — behavioral ↔ bit-true RTL equivalence vs datapath wordlength.
// ---------------------------------------------------------------------

fn rtl_equivalence(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let rate = wlan_rate(cfg, WlanRate::Mbps12)?;
    let word = cfg.u64("word_bits")? as u32;
    let frac = cfg.u64("frac_bits")? as u32;
    let n_bits = cfg.usize_or("n_bits", 960)?;
    let payload = payload_bits(n_bits, cfg.u64_or("payload_seed", 21)?);

    let mut beh = MotherModel::new(ieee80211a::params(rate)).map_err(|e| e.to_string())?;
    let frame_b = beh.transmit(&payload).map_err(|e| e.to_string())?;
    let rtl = Tx80211aRtl::new(rate).with_format(FxFormat::new(word, frac));
    let frame_r = rtl.transmit(&payload);
    let mut max_d = 0.0f64;
    let mut err2 = 0.0f64;
    let mut dot = 0.0f64;
    let mut pb = 0.0f64;
    let mut pr = 0.0f64;
    for (b, r) in frame_b.samples().iter().zip(&frame_r.samples) {
        let d = (*b - *r).abs();
        max_d = max_d.max(d);
        err2 += d * d;
        dot += (b.conj() * *r).re;
        pb += b.norm_sqr();
        pr += r.norm_sqr();
    }
    let rms = (err2 / frame_b.samples().len() as f64).sqrt();
    let corr = dot / (pb * pr).sqrt();
    Ok(vec![
        Metric::new("max_abs_err", max_d),
        Metric::new("rms_err", rms),
        Metric::new("correlation", corr),
    ])
}

// ---------------------------------------------------------------------
// E6 / E9(b) — EVM through one configurable impairment: a Rapp PA at a
// given back-off, a phase-noisy LO, or a sample dropper.
// ---------------------------------------------------------------------

fn evm_chain(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let rate = wlan_rate(cfg, WlanRate::Mbps54)?;
    let p = ieee80211a::params(rate);
    let n_bits = cfg.usize_or("n_bits", 12_000)?;
    let frame = transmit_frame(&p, n_bits, cfg.u64_or("payload_seed", 9)?);
    let evm_symbols = cfg.usize_or("evm_symbols", 6)?;

    let mut g = Graph::new();
    let src = g.add(SamplePlayback::new(frame.signal().clone()));
    let tail = match cfg.str("impairment")? {
        "pa" => g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(cfg.f64("ibo_db")?)),
        "lo" => g.add(LocalOscillator::new(
            0.0,
            cfg.f64("linewidth_hz")?,
            cfg.u64_or("lo_seed", 13)?,
        )),
        "dropper" => g.add(SampleDropper::new(
            cfg.f64("drop_rate")?,
            cfg.u64_or("drop_seed", 7)?,
        )),
        other => return Err(format!("unknown impairment `{other}` (pa, lo, dropper)")),
    };
    g.chain(&[src, tail]).map_err(|e| e.to_string())?;
    g.run().map_err(|e| e.to_string())?;
    let out = g.output(tail).ok_or("impairment never ran")?;
    Ok(vec![Metric::new(
        "evm_db",
        evm_after_gain_correction(&p, &frame, out, evm_symbols),
    )])
}

// ---------------------------------------------------------------------
// E7 — coded vs uncoded BER over AWGN (the coding-gain waterfall).
// ---------------------------------------------------------------------

fn coded_ber(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let rate = wlan_rate(cfg, WlanRate::Mbps12)?;
    let snr_db = cfg.f64("snr_db")?;
    let coded = bool_or(cfg, "coded", true)?;
    let n_bits = cfg.usize_or("n_bits", 48_000)?;
    let sent = payload_bits(n_bits, cfg.u64_or("payload_seed", 77)?);
    // Legacy E7 seeds the channel as a function of the SNR alone.
    let noise_seed =
        cfg.u64_or("noise_seed_base", if coded { 2000 } else { 1000 })? + snr_db as u64;

    let mut params = ieee80211a::params(rate);
    if !coded {
        params.conv_code = None;
        params.interleaver = ofdm_core::interleave::InterleaverSpec::None;
        params.name = "802.11a QPSK uncoded".into();
    }
    let mut tx = MotherModel::new(params.clone()).map_err(|e| e.to_string())?;
    let frame = tx.transmit(&sent).map_err(|e| e.to_string())?;
    let mut g = Graph::new();
    let src = g.add(SamplePlayback::new(frame.signal().clone()));
    let ch = g.add(AwgnChannel::from_snr_db(snr_db, noise_seed));
    g.chain(&[src, ch]).map_err(|e| e.to_string())?;
    g.run().map_err(|e| e.to_string())?;
    let received = g.output(ch).ok_or("channel never ran")?.clone();
    let mut rx = ReferenceReceiver::new(params).map_err(|e| e.to_string())?;
    let got = rx
        .receive(&received, sent.len())
        .map_err(|e| e.to_string())?;
    let errors = sent.iter().zip(&got).filter(|(a, b)| a != b).count();
    Ok(vec![Metric::new("ber", errors as f64 / n_bits as f64)])
}

// ---------------------------------------------------------------------
// E8 — DAB mobile reception: differential DQPSK BER vs Doppler over a
// two-tap Rayleigh channel.
// ---------------------------------------------------------------------

fn doppler_ber(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let doppler_hz = cfg.f64("doppler_hz")?;
    let params = dab::params(match cfg.str_or("tx_mode", "I")? {
        "I" => dab::TxMode::I,
        "II" => dab::TxMode::II,
        "III" => dab::TxMode::III,
        "IV" => dab::TxMode::IV,
        other => return Err(format!("unknown DAB TxMode `{other}`")),
    });
    let n_bits = cfg.usize_or("n_bits", 6000)?;
    let sent = payload_bits(n_bits, cfg.u64_or("payload_seed", 31)?);
    let paths = cfg.pairs_or("fading_paths", &[(0.0, 0.7), (30.0, 0.3)])?;
    let taps: Vec<(usize, f64)> = paths.iter().map(|&(d, p)| (d as usize, p)).collect();

    let mut tx = MotherModel::new(params.clone()).map_err(|e| e.to_string())?;
    let frame = tx.transmit(&sent).map_err(|e| e.to_string())?;
    let mut g = Graph::new();
    let src = g.add(SamplePlayback::new(frame.signal().clone()));
    let fading = g.add(RayleighChannel::new(
        taps,
        doppler_hz,
        cfg.u64_or("fading_seed", 3)?,
    ));
    let noise = g.add(AwgnChannel::from_snr_db(
        cfg.f64_or("snr_db", 28.0)?,
        cfg.u64_or("noise_seed", 9)?,
    ));
    g.chain(&[src, fading, noise]).map_err(|e| e.to_string())?;
    g.run().map_err(|e| e.to_string())?;
    let received = g.output(noise).ok_or("channel never ran")?;
    let mut rx = ReferenceReceiver::new(params).map_err(|e| e.to_string())?;
    let got = rx
        .receive(received, sent.len())
        .map_err(|e| e.to_string())?;
    let errors = sent.iter().zip(&got).filter(|(a, b)| a != b).count();
    Ok(vec![
        Metric::new("ber", errors as f64 / n_bits as f64),
        // VHF band III ≈ 200 MHz: v = f_d·c/f ≈ f_d · 5.4 km/h per Hz.
        Metric::new("speed_kmh", doppler_hz * 5.4),
    ])
}

// ---------------------------------------------------------------------
// E9(a) — the 64-scenario fault-injection sweep.
// ---------------------------------------------------------------------

/// The 64-scenario fault-injection sweep behind E9 and the bench JSON: a
/// deterministic mix of clean, panicking, NaN-emitting and
/// sample-dropping scenarios, with the [`FaultPlan`] rotating over three
/// wrapped block types (soft-clip PA, Rapp PA, AWGN channel). Panicking
/// scenarios recover on their retry (reseeded with a zero panic rate);
/// NaN scenarios trip the graph's non-finite guard on every attempt and
/// end `Faulted`.
pub fn run_fault_sweep() -> (Vec<ScenarioOutcome<f64>>, SweepReport) {
    // The injected panics are caught and accounted by the runner; the
    // default hook would still print 16 backtraces into the report. Mute
    // it for the sweep (the worker threads are the only panickers here).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = SweepPlan::new(64).with_retry(RetryPolicy::retries(1)).run(
        |i, attempt, _ctx| -> Result<f64, SimError> {
            let seed = scenario_seed(0xFA17, i) ^ u64::from(attempt);
            let plan = match i % 4 {
                0 => FaultPlan::new(),
                1 => FaultPlan::new().with_panic_rate(if attempt == 0 { 1.0 } else { 0.0 }),
                2 => FaultPlan::new().with_nan_rate(1.0),
                _ => FaultPlan::new().with_drop_rate(0.25),
            };
            let mut g = Graph::new();
            g.guard_non_finite(true);
            let src = g.add(ToneSource::new(1.0e6, 20.0e6, 2048));
            let impaired = match (i / 4) % 3 {
                0 => g.add(plan.wrap(seed, SoftClipPa::new(1.0))),
                1 => g.add(plan.wrap(seed, RappPa::new(1.0, 3.0))),
                _ => g.add(plan.wrap(seed, AwgnChannel::from_snr_db(30.0, seed))),
            };
            let meter = g.add(PowerMeter::new());
            g.chain(&[src, impaired, meter])?;
            g.run()?;
            Ok(g.block::<PowerMeter>(meter)
                .expect("present")
                .power()
                .expect("ran"))
        },
    );
    std::panic::set_hook(prev_hook);
    result
}

fn fault_sweep_metrics() -> Result<Vec<Metric>, String> {
    let (outcomes, report) = run_fault_sweep();
    let faults = report.faults.ok_or("resilient sweep reported no faults")?;
    Ok(vec![
        Metric::new("outcomes", outcomes.len() as f64),
        Metric::new("succeeded", faults.succeeded as f64),
        Metric::new("retried", faults.retried as f64),
        Metric::new("faulted", faults.faulted as f64),
        Metric::new("panics_caught", faults.panics_caught as f64),
        Metric::new("errors_caught", faults.errors_caught as f64),
        Metric::new("survival_rate", faults.survival_rate()),
    ])
}

// ---------------------------------------------------------------------
// E10 — supervised execution: watchdog, breakers, checkpoint/resume.
// ---------------------------------------------------------------------

/// Mean tone power through an AWGN channel and a soft limiter — the
/// deterministic per-`(seed, index)` scenario the supervision kernels
/// and the bench snapshot share.
///
/// # Errors
///
/// Graph wiring or execution failures (none in practice — the chain is
/// clean).
pub fn e10_scenario_power(seed: u64, i: usize) -> Result<f64, SimError> {
    let mut g = Graph::new();
    let src = g.add(ToneSource::new(1.0e6, 20.0e6, 1024));
    let ch = g.add(AwgnChannel::from_snr_db(
        10.0 + i as f64,
        scenario_seed(seed, i),
    ));
    let pa = g.add(SoftClipPa::new(1.0));
    let meter = g.add(PowerMeter::new());
    g.chain(&[src, ch, pa, meter])?;
    g.run()?;
    Ok(g.block::<PowerMeter>(meter)
        .expect("present")
        .power()
        .expect("ran"))
}

fn watchdog(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let count = cfg.usize_or("scenarios", 16)?;
    let hang_every = cfg.usize_or("hang_every", 4)?.max(1);
    let budget = Duration::from_millis(cfg.u64_or("budget_ms", 300)?);
    let power_seed = cfg.u64_or("power_seed", 0xE10)?;
    let supervisor = SweepSupervisor::new()
        .with_scenario_budget(budget)
        .with_poll_interval(Duration::from_millis(cfg.u64_or("poll_ms", 2)?));
    let started = std::time::Instant::now();
    let (outcomes, report) = SweepPlan::new(count)
        .threads(cfg.usize_or("threads", 4)?.max(1))
        .with_supervisor(supervisor)
        .run(|i, _attempt, ctx| -> Result<f64, SimError> {
            if i % hang_every == hang_every - 1 {
                let mut g = Graph::new();
                let src = g.add(StalledSource::new(20.0e6, Duration::from_millis(2)));
                let pa = g.add(SoftClipPa::new(1.0));
                g.chain(&[src, pa])?;
                ctx.supervise(&mut g);
                g.run_streaming(64)?;
            }
            e10_scenario_power(power_seed, i)
        });
    let faults = report.faults.ok_or("supervised sweep reported no faults")?;
    let sup = report
        .supervision
        .ok_or("supervised sweep reported no supervision")?;
    Ok(vec![
        Metric::new("outcomes", outcomes.len() as f64),
        Metric::new("succeeded", faults.succeeded as f64),
        Metric::new("faulted", faults.faulted as f64),
        Metric::new("deadline_kills", sup.deadline_kills as f64),
        Metric::volatile("wall_s", started.elapsed().as_secs_f64()),
    ])
}

fn breaker_degraded() -> Result<Vec<Metric>, String> {
    // A clean reference pass for the exact-pass-through comparison.
    let mut clean = Graph::new();
    let src = clean.add(ToneSource::new(1.0e6, 20.0e6, 4096));
    let pa = clean.add(SoftClipPa::new(1.0));
    clean.chain(&[src, pa]).map_err(|e| e.to_string())?;
    clean.probe(pa).map_err(|e| e.to_string())?;
    clean.run_streaming(256).map_err(|e| e.to_string())?;
    let clean_out = clean.output(pa).ok_or("probe never ran")?.clone();

    let mut g = Graph::new();
    let src = g.add(ToneSource::new(1.0e6, 20.0e6, 4096));
    let bad = g.add(
        FaultPlan::new()
            .with_error_rate(1.0)
            .wrap(0xB10, NanInjector::new(1.0, 7)),
    );
    let pa = g.add(SoftClipPa::new(1.0));
    g.chain(&[src, bad, pa]).map_err(|e| e.to_string())?;
    g.probe(pa).map_err(|e| e.to_string())?;
    g.set_breaker_policy(Some(BreakerPolicy::new().with_threshold(1)));
    let run = g
        .run_streaming_instrumented(256)
        .map_err(|e| e.to_string())?;
    let out = g.output(pa).ok_or("probe never ran")?;
    let exact = out.samples() == clean_out.samples();
    Ok(vec![
        Metric::new(
            "health_degraded",
            if run.health == Health::Degraded {
                1.0
            } else {
                0.0
            },
        ),
        Metric::new("breaker_trips", run.breaker_trips as f64),
        Metric::new("bypassed_invocations", run.bypassed_invocations as f64),
        Metric::new("passthrough_exact", if exact { 1.0 } else { 0.0 }),
    ])
}

fn breaker_fail_fast() -> Result<Vec<Metric>, String> {
    // An essential block (here the source) is never bypassed: once its
    // breaker opens, runs fail fast without touching the graph.
    let mut g = Graph::new();
    let src = g.add(
        FaultPlan::new()
            .with_error_rate(1.0)
            .wrap(0xE55, ToneSource::new(1.0e6, 20.0e6, 256)),
    );
    let pa = g.add(SoftClipPa::new(1.0));
    g.chain(&[src, pa]).map_err(|e| e.to_string())?;
    g.set_breaker_policy(Some(BreakerPolicy::new().with_threshold(2)));
    for _ in 0..2 {
        if g.run().is_ok() {
            return Err("injector unexpectedly succeeded".into());
        }
    }
    let open_fail_fast = match g.run() {
        Err(SimError::BlockFault { fault, .. }) if fault.contains("circuit breaker open") => 1.0,
        _ => 0.0,
    };
    Ok(vec![Metric::new("open_fail_fast", open_fail_fast)])
}

fn checkpoint_resume(cfg: &CellCfg, seed: u64) -> Result<Vec<Metric>, String> {
    let count = cfg.usize_or("scenarios", 12)?;
    let power_seed = cfg.u64_or("power_seed", 0xC10)?;
    let path = std::env::temp_dir().join(format!(
        "rfsim-lab-resume-{}-{seed:x}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    // The uninterrupted reference never touches disk.
    let mut reference = SweepCheckpoint::load_or_new("/nonexistent/lab-reference", "lab", count);
    let plan = SweepPlan::new(count).threads(cfg.usize_or("threads", 4)?.max(1));
    let (uninterrupted, _) = plan.run_checkpointed(&mut reference, |i, _attempt, _ctx| {
        e10_scenario_power(power_seed, i)
    });
    // Front half persists, back half "crashes".
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "lab", count).with_batch(4);
    let _ = plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| {
        if i >= count / 2 {
            return Err(SimError::BlockFailure {
                block: "lab".into(),
                message: "interrupted".into(),
            });
        }
        e10_scenario_power(power_seed, i)
    });
    drop(ckpt);
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "lab", count);
    let persisted = ckpt.len();
    let (resumed, resumed_report) = plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| {
        e10_scenario_power(power_seed, i)
    });
    let resumed_count = resumed_report
        .supervision
        .ok_or("checkpointed sweep reported no supervision")?
        .resumed;
    let succeeded = resumed_report
        .faults
        .ok_or("checkpointed sweep reported no faults")?
        .succeeded;
    let identical = uninterrupted.len() == resumed.len()
        && uninterrupted
            .iter()
            .zip(&resumed)
            .all(|(a, b)| a.result() == b.result());
    ckpt.discard().map_err(|e| format!("checkpoint: {e}"))?;
    Ok(vec![
        Metric::new("persisted", persisted as f64),
        Metric::new("resumed", resumed_count as f64),
        Metric::new("succeeded", succeeded as f64),
        Metric::new("outcomes_identical", if identical { 1.0 } else { 0.0 }),
    ])
}

// ---------------------------------------------------------------------
// E11 — one (standard, SNR) waterfall grid cell, bit-identical to
// `run_waterfall`'s tallies for the same grid geometry and seed.
// ---------------------------------------------------------------------

fn ber_grid(cfg: &CellCfg) -> Result<Vec<Metric>, String> {
    let id = standard(cfg)?;
    let snr_db = cfg.f64("snr_db")?;
    let grid_seed = cfg.u64("grid_seed")?;
    let std_index = cfg.usize_or("std_index", 0)?;
    let snr_index = cfg.usize_or("snr_index", 0)?;
    let n_snr = cfg.usize_or("n_snr", 1)?.max(1);
    let realizations = cfg.usize_or("realizations", 1)?.max(1);
    let n_payload = cfg.u64("payload_bits")? as usize;
    let profile = match cfg.str_or("profile", "awgn")? {
        "awgn" => ChannelProfile::Awgn,
        "rayleigh" => {
            let paths = cfg.pairs_or("fading_paths", &[])?;
            if paths.is_empty() {
                return Err("rayleigh profile needs `fading_paths`".into());
            }
            ChannelProfile::Rayleigh {
                paths: paths.iter().map(|&(d, p)| (d as usize, p)).collect(),
            }
        }
        other => return Err(format!("unknown profile `{other}` (awgn, rayleigh)")),
    };
    let params = default_params(id);
    let mut errors = 0u64;
    let mut bits = 0u64;
    for r in 0..realizations {
        // The legacy flat grid index: realization fastest, SNR next,
        // standard slowest — reproducing `run_waterfall`'s seed stream.
        let flat = (std_index * n_snr + snr_index) * realizations + r;
        let (e, b) = measure_ber_point(
            &params,
            &profile,
            snr_db,
            n_payload,
            scenario_seed(grid_seed, flat),
        )?;
        errors += e;
        bits += b;
    }
    if bits == 0 {
        return Err("grid cell measured zero bits".into());
    }
    Ok(vec![
        Metric::new("ber", errors as f64 / bits as f64),
        Metric::new("errors", errors as f64),
        Metric::new("bits", bits as f64),
    ])
}

// ---------------------------------------------------------------------
// E12/E13 — the service round trip, against the real binaries over TCP.
// ---------------------------------------------------------------------

/// Locates a sibling binary (`rfsim-server`, `rfsim-cli`): the
/// `RFSIM_BIN_DIR` env override first, then the directory of the current
/// executable, then its parent (which covers `target/<profile>/deps`
/// test binaries).
///
/// # Errors
///
/// When the binary is in none of those places.
pub fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Ok(dir) = std::env::var("RFSIM_BIN_DIR") {
        candidates.push(PathBuf::from(dir));
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            candidates.push(dir.to_path_buf());
            if let Some(parent) = dir.parent() {
                candidates.push(parent.to_path_buf());
            }
        }
    }
    let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
    for dir in &candidates {
        let path = dir.join(&file);
        if path.is_file() {
            return Ok(path);
        }
    }
    Err(format!(
        "binary `{file}` not found (searched {:?}; build it with `cargo build --bin {name}` \
         or point RFSIM_BIN_DIR at it)",
        candidates
    ))
}

/// Kills the spawned server on error paths so a failing cell never
/// leaks an orphan process.
struct ServerGuard {
    child: std::process::Child,
    done: bool,
}

impl ServerGuard {
    /// Polls for exit for up to `timeout`, then reports the status.
    fn wait_timeout(&mut self, timeout: Duration) -> Result<std::process::ExitStatus, String> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    self.done = true;
                    return Ok(status);
                }
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Ok(None) => return Err("server did not exit within its deadline".into()),
                Err(e) => return Err(format!("wait on server: {e}")),
            }
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

fn waterfall_spec_from_cfg(cfg: &CellCfg) -> Result<WaterfallSpec, String> {
    let list = cfg
        .get("standards")
        .and_then(Value::as_array)
        .ok_or("missing array field `standards`")?;
    let mut standards = Vec::with_capacity(list.len());
    for s in list {
        let key = s.as_str().ok_or("`standards` has a non-string entry")?;
        standards
            .push(StandardId::from_key(key).ok_or_else(|| format!("unknown standard `{key}`"))?);
    }
    let snr = cfg
        .get("snr_db")
        .and_then(Value::as_array)
        .ok_or("missing array field `snr_db`")?;
    let snr_db = snr
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| x.is_finite())
                .ok_or_else(|| "`snr_db` has a non-finite entry".to_owned())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WaterfallSpec {
        standards,
        snr_db,
        realizations: cfg.usize_or("realizations", 2)?.max(1),
        payload_bits: cfg.usize_or("payload_bits", 256)?,
        base_seed: cfg.u64("job_seed")?,
        profile: ChannelProfile::Awgn,
        threads: 0,
    })
}

/// Renders the wire-format job file the CLI submits (`base_seed` rides
/// as a string so the full `u64` range round-trips).
fn job_json(spec: &WaterfallSpec, deadline_ms: u64) -> String {
    let standards: Vec<Value> = spec
        .standards
        .iter()
        .map(|s| Value::from(s.key()))
        .collect();
    let snr: Vec<Value> = spec.snr_db.iter().map(|&x| Value::from(x)).collect();
    Value::Object(vec![
        (
            "spec".into(),
            Value::Object(vec![
                ("standards".into(), Value::Array(standards)),
                ("snr_db".into(), Value::Array(snr)),
                ("realizations".into(), Value::from(spec.realizations)),
                ("payload_bits".into(), Value::from(spec.payload_bits)),
                ("base_seed".into(), Value::from(spec.base_seed.to_string())),
                (
                    "profile".into(),
                    Value::Object(vec![("type".into(), Value::from("awgn"))]),
                ),
                ("threads".into(), Value::from(0.0)),
            ]),
        ),
        ("deadline_ms".into(), Value::from(deadline_ms)),
    ])
    .to_string()
}

fn service(cfg: &CellCfg, seed: u64, chaos: bool) -> Result<Vec<Metric>, String> {
    use std::process::{Command, Stdio};

    let spec = waterfall_spec_from_cfg(cfg)?;
    let server_bin = sibling_binary("rfsim-server")?;
    let cli_bin = sibling_binary("rfsim-cli")?;
    let dir = std::env::temp_dir().join(format!("rfsim-lab-svc-{}-{seed:x}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let cleanup = |result: Result<Vec<Metric>, String>| {
        let _ = std::fs::remove_dir_all(&dir);
        result
    };
    let port_file = dir.join("port");
    let job_file = dir.join("job.json");
    let out_file = dir.join("waterfall.json");
    if let Err(e) = std::fs::write(
        &job_file,
        job_json(&spec, cfg.u64_or("deadline_ms", 120_000)?),
    ) {
        return cleanup(Err(format!("write job: {e}")));
    }

    let started = std::time::Instant::now();
    let child = Command::new(&server_bin)
        .args(["--addr", "127.0.0.1:0", "--port-file"])
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", server_bin.display()));
    let mut server = match child {
        Ok(child) => ServerGuard { child, done: false },
        Err(e) => return cleanup(Err(e)),
    };

    // Wait for the ephemeral port to land in the port file.
    let mut addr = String::new();
    for _ in 0..200 {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if !text.trim().is_empty() {
                addr = text.trim().to_owned();
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if addr.is_empty() {
        return cleanup(Err("server never wrote its port file".into()));
    }

    let mut submit = Command::new(&cli_bin);
    submit
        .arg("submit")
        .arg(&job_file)
        .args(["--addr", &addr, "--compare-local", "--out"])
        .arg(&out_file);
    if chaos {
        submit
            .args(["--resilient", "--via-chaos"])
            .arg(cfg.str_or("chaos", "seed=11,reset=0.2,tear=0.2,faults=6")?);
    }
    let submit_out = match submit.output() {
        Ok(out) => out,
        Err(e) => return cleanup(Err(format!("run rfsim-cli: {e}"))),
    };
    if !submit_out.status.success() {
        return cleanup(Err(format!(
            "submit failed: {}",
            String::from_utf8_lossy(&submit_out.stderr)
        )));
    }

    // Byte-compare the streamed document against an in-process run.
    let streamed = match std::fs::read_to_string(&out_file) {
        Ok(text) => text,
        Err(e) => return cleanup(Err(format!("read {}: {e}", out_file.display()))),
    };
    let local = match run_waterfall(&spec, None) {
        Ok(report) => format!("{}\n", waterfall_json(&spec, &report)),
        Err(e) => return cleanup(Err(format!("local reference run: {e}"))),
    };
    let byte_identical = if streamed == local { 1.0 } else { 0.0 };

    // Take the server down the E12 way (shutdown) or the E13 way (drain)
    // and require a clean exit either way.
    let stop = Command::new(&cli_bin)
        .arg(if chaos { "drain" } else { "shutdown" })
        .args(["--addr", &addr])
        .output();
    let stop_ok = matches!(&stop, Ok(out) if out.status.success());
    let status = match server.wait_timeout(Duration::from_secs(30)) {
        Ok(status) => status,
        Err(e) => return cleanup(Err(e)),
    };
    let clean_exit = if stop_ok && status.success() {
        1.0
    } else {
        0.0
    };

    cleanup(Ok(vec![
        Metric::new("byte_identical", byte_identical),
        Metric::new("clean_exit", clean_exit),
        Metric::new("points", (spec.standards.len() * spec.snr_db.len()) as f64),
        Metric::volatile("wall_s", started.elapsed().as_secs_f64()),
    ]))
}

//! Aggregation, declarative-assertion evaluation and report emission for
//! the experiment lab.
//!
//! The `lab/v1` document is byte-stable: cells carry only deterministic
//! metrics (values per repeat plus p50/p95/p99 stats); volatile metrics
//! contribute their *names* only. Assertions evaluate over the
//! aggregated matrix and their outcomes (with deterministic detail
//! strings) are part of the document, so a rerun with the same spec and
//! seed reproduces it byte for byte.

use super::spec::{Assertion, CellSel, Direction, ExperimentSpec, Op};
use super::CellRun;
use rfsim::{scenario_seed, Percentiles, SweepReport};
use serde::json::Value;

/// One metric aggregated over a cell's repeats.
#[derive(Debug, Clone)]
pub struct MetricAgg {
    /// Metric name.
    pub name: String,
    /// Wall-clock metric — excluded from `lab/v1` cells.
    pub volatile: bool,
    /// Per-repeat values, in repeat order.
    pub values: Vec<f64>,
    /// Percentile statistics over `values`.
    pub stats: Percentiles,
}

/// One (scenario, variant) cell of the aggregated matrix.
#[derive(Debug, Clone)]
pub struct CellAgg {
    /// Scenario label.
    pub scenario: String,
    /// Variant label.
    pub variant: String,
    /// The first repeat's derived seed (repeats r > 0 use the subsequent
    /// flat indices).
    pub seed: u64,
    /// Aggregated metrics, in kernel emission order.
    pub metrics: Vec<MetricAgg>,
}

impl CellAgg {
    /// Looks a metric up by name.
    pub fn metric(&self, name: &str) -> Option<&MetricAgg> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// The evaluated result of one declarative assertion.
#[derive(Debug, Clone)]
pub struct AssertionOutcome {
    /// The assertion kind (`bound`, `monotone`, `order`, `equal`).
    pub kind: &'static str,
    /// Deterministic human-readable description of what was checked (and
    /// what failed).
    pub detail: String,
    /// Whether the check held.
    pub pass: bool,
}

/// A completed lab run: the aggregated matrix, assertion outcomes and
/// the sweep telemetry.
#[derive(Debug, Clone)]
pub struct LabRun {
    /// The spec that produced this run.
    pub spec: ExperimentSpec,
    /// Scenario-major, variant-fastest cell matrix.
    pub cells: Vec<CellAgg>,
    /// One outcome per spec assertion, in spec order.
    pub assertions: Vec<AssertionOutcome>,
    /// `true` when every assertion passed.
    pub verdict: bool,
    /// Sweep telemetry (wall time, per-run duration percentiles) — part
    /// of the rendered table, never of the byte-stable JSON.
    pub sweep: SweepReport,
}

/// Formats a value exactly as the JSON layer would — shortest
/// round-trip — so assertion details stay byte-stable.
fn fmt(v: f64) -> String {
    Value::from(v).to_string()
}

/// Groups flat runs into cells, aggregates percentiles and evaluates the
/// spec's assertions.
///
/// # Errors
///
/// Inconsistent metric sets across repeats, or an assertion referencing
/// an unknown scenario/variant/metric (a spec-authoring bug — it fails
/// the run loudly instead of passing vacuously).
pub fn aggregate(
    spec: &ExperimentSpec,
    runs: Vec<CellRun>,
    sweep: SweepReport,
) -> Result<LabRun, String> {
    let mut cells = Vec::with_capacity(spec.scenarios.len() * spec.variants.len());
    for (s, scenario) in spec.scenarios.iter().enumerate() {
        for (v, variant) in spec.variants.iter().enumerate() {
            let first_flat = (s * spec.variants.len() + v) * spec.repeats;
            let first = &runs[first_flat].0;
            let mut metrics = Vec::with_capacity(first.len());
            for m in first {
                let mut values = Vec::with_capacity(spec.repeats);
                for r in 0..spec.repeats {
                    let run = &runs[first_flat + r];
                    let found = run.0.iter().find(|x| x.name == m.name).ok_or_else(|| {
                        format!(
                            "cell ({}, {}): repeat {r} is missing metric `{}`",
                            scenario.label, variant.label, m.name
                        )
                    })?;
                    values.push(found.value);
                }
                let stats = Percentiles::from_samples(&values)
                    .ok_or_else(|| format!("metric `{}` has no samples", m.name))?;
                metrics.push(MetricAgg {
                    name: m.name.clone(),
                    volatile: m.volatile,
                    values,
                    stats,
                });
            }
            cells.push(CellAgg {
                scenario: scenario.label.clone(),
                variant: variant.label.clone(),
                seed: scenario_seed(spec.base_seed, first_flat),
                metrics,
            });
        }
    }
    let matrix = Matrix {
        spec,
        cells: &cells,
    };
    let assertions = spec
        .assertions
        .iter()
        .map(|a| matrix.evaluate(a))
        .collect::<Result<Vec<_>, _>>()?;
    let verdict = assertions.iter().all(|a| a.pass);
    Ok(LabRun {
        spec: spec.clone(),
        cells,
        assertions,
        verdict,
        sweep,
    })
}

/// Lookup helper over the aggregated matrix during assertion evaluation.
struct Matrix<'a> {
    spec: &'a ExperimentSpec,
    cells: &'a [CellAgg],
}

impl Matrix<'_> {
    fn cell(&self, scenario: &str, variant: &str) -> Result<&CellAgg, String> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.variant == variant)
            .ok_or_else(|| format!("assertion references unknown cell ({scenario}, {variant})"))
    }

    fn stat(&self, scenario: &str, variant: &str, metric: &str, stat: &str) -> Result<f64, String> {
        let cell = self.cell(scenario, variant)?;
        let m = cell.metric(metric).ok_or_else(|| {
            format!(
                "assertion references unknown metric `{metric}` in cell ({scenario}, {variant})"
            )
        })?;
        if m.volatile {
            return Err(format!(
                "assertion references volatile metric `{metric}` — volatile metrics are \
                 wall-clock measurements and cannot be asserted deterministically"
            ));
        }
        m.stats
            .stat(stat)
            .ok_or_else(|| format!("unknown statistic `{stat}`"))
    }

    fn scenario_labels(&self) -> Vec<&str> {
        self.spec
            .scenarios
            .iter()
            .map(|s| s.label.as_str())
            .collect()
    }

    fn variant_labels<'a>(&'a self, filter: Option<&'a str>) -> Vec<&'a str> {
        match filter {
            Some(v) => vec![v],
            None => self
                .spec
                .variants
                .iter()
                .map(|v| v.label.as_str())
                .collect(),
        }
    }

    fn evaluate(&self, assertion: &Assertion) -> Result<AssertionOutcome, String> {
        let (pass, detail) = match assertion {
            Assertion::Bound {
                metric,
                stat,
                scenario,
                variant,
                op,
                value,
                tol,
            } => {
                let scenarios: Vec<&str> = match scenario {
                    Some(s) => vec![s.as_str()],
                    None => self.scenario_labels(),
                };
                let variants = self.variant_labels(variant.as_deref());
                let mut fail: Option<String> = None;
                for s in &scenarios {
                    for v in &variants {
                        let x = self.stat(s, v, metric, stat)?;
                        let ok = match op {
                            Op::Le => x <= *value,
                            Op::Ge => x >= *value,
                            Op::Lt => x < *value,
                            Op::Gt => x > *value,
                            Op::Eq => (x - value).abs() <= *tol,
                        };
                        if !ok && fail.is_none() {
                            fail = Some(format!(" — cell ({s}, {v}): {}", fmt(x)));
                        }
                    }
                }
                let mut detail = format!(
                    "{metric}.{stat} {} {} over {} cell(s)",
                    op.symbol(),
                    fmt(*value),
                    scenarios.len() * variants.len()
                );
                if let Some(f) = &fail {
                    detail.push_str(f);
                }
                (fail.is_none(), detail)
            }
            Assertion::Monotone {
                metric,
                stat,
                variant,
                scenarios,
                direction,
                factor,
                slack,
            } => {
                let order: Vec<&str> = match scenarios {
                    Some(list) => list.iter().map(String::as_str).collect(),
                    None => self.scenario_labels(),
                };
                let variants = self.variant_labels(variant.as_deref());
                let mut fail: Option<String> = None;
                for v in &variants {
                    for pair in order.windows(2) {
                        let prev = self.stat(pair[0], v, metric, stat)?;
                        let next = self.stat(pair[1], v, metric, stat)?;
                        let bound = prev * factor;
                        let ok = match direction {
                            Direction::NonIncreasing => next <= bound + slack,
                            Direction::NonDecreasing => next >= bound - slack,
                            Direction::Increasing => next > bound + slack,
                            Direction::Decreasing => next < bound - slack,
                        };
                        if !ok && fail.is_none() {
                            fail = Some(format!(
                                " — variant {v}: {} -> {} breaks at {} ({} -> {})",
                                pair[0],
                                pair[1],
                                fmt(next),
                                fmt(prev),
                                fmt(next)
                            ));
                        }
                    }
                }
                let mut detail = format!(
                    "{metric}.{stat} {} across {} scenario(s)",
                    direction.name(),
                    order.len()
                );
                if let Some(f) = &fail {
                    detail.push_str(f);
                }
                (fail.is_none(), detail)
            }
            Assertion::Order {
                metric,
                stat,
                lesser,
                greater,
                factor,
                margin,
            } => {
                let mut fail: Option<String> = None;
                let mut count = 0usize;
                self.for_each_pair(lesser, greater, |s_l, v_l, s_g, v_g| {
                    let m_l = side_metric(lesser, metric)?;
                    let m_g = side_metric(greater, metric)?;
                    let lo = self.stat(s_l, v_l, m_l, stat)?;
                    let hi = self.stat(s_g, v_g, m_g, stat)?;
                    count += 1;
                    if lo >= hi * factor - margin && fail.is_none() {
                        fail = Some(format!(
                            " — ({s_l}, {v_l}).{m_l} = {} not < ({s_g}, {v_g}).{m_g} * {} - {} = {}",
                            fmt(lo),
                            fmt(*factor),
                            fmt(*margin),
                            fmt(hi * factor - margin)
                        ));
                    }
                    Ok(())
                })?;
                let mut detail = format!(
                    "order: {} < {} * {} - {} over {count} pair(s)",
                    describe_side(lesser, metric),
                    describe_side(greater, metric),
                    fmt(*factor),
                    fmt(*margin)
                );
                if let Some(f) = &fail {
                    detail.push_str(f);
                }
                (fail.is_none(), detail)
            }
            Assertion::Equal {
                metric,
                stat,
                left,
                right,
                tol,
            } => {
                let mut fail: Option<String> = None;
                let mut count = 0usize;
                self.for_each_pair(left, right, |s_l, v_l, s_r, v_r| {
                    let m_l = side_metric(left, metric)?;
                    let m_r = side_metric(right, metric)?;
                    let a = self.stat(s_l, v_l, m_l, stat)?;
                    let b = self.stat(s_r, v_r, m_r, stat)?;
                    count += 1;
                    if (a - b).abs() > *tol && fail.is_none() {
                        fail = Some(format!(
                            " — ({s_l}, {v_l}).{m_l} = {} != ({s_r}, {v_r}).{m_r} = {}",
                            fmt(a),
                            fmt(b)
                        ));
                    }
                    Ok(())
                })?;
                let mut detail = format!(
                    "equal: {} == {} (tol {}) over {count} pair(s)",
                    describe_side(left, metric),
                    describe_side(right, metric),
                    fmt(*tol)
                );
                if let Some(f) = &fail {
                    detail.push_str(f);
                }
                (fail.is_none(), detail)
            }
        };
        Ok(AssertionOutcome {
            kind: assertion.kind(),
            detail,
            pass,
        })
    }

    /// Iterates the joint instances of a pair comparison: axes pinned on
    /// both sides use their pins once; axes free on both sides loop
    /// jointly over the spec's labels (parse-time validation rules out
    /// mixed pinning).
    fn for_each_pair<F>(&self, a: &CellSel, b: &CellSel, mut f: F) -> Result<(), String>
    where
        F: FnMut(&str, &str, &str, &str) -> Result<(), String>,
    {
        let scenario_pairs: Vec<(&str, &str)> = match (&a.scenario, &b.scenario) {
            (Some(x), Some(y)) => vec![(x.as_str(), y.as_str())],
            _ => self.scenario_labels().iter().map(|&s| (s, s)).collect(),
        };
        let variant_pairs: Vec<(&str, &str)> = match (&a.variant, &b.variant) {
            (Some(x), Some(y)) => vec![(x.as_str(), y.as_str())],
            _ => self
                .spec
                .variants
                .iter()
                .map(|v| (v.label.as_str(), v.label.as_str()))
                .collect(),
        };
        for (s_a, s_b) in &scenario_pairs {
            for (v_a, v_b) in &variant_pairs {
                f(s_a, v_a, s_b, v_b)?;
            }
        }
        Ok(())
    }
}

fn side_metric<'a>(side: &'a CellSel, default: &'a Option<String>) -> Result<&'a str, String> {
    side.metric
        .as_deref()
        .or(default.as_deref())
        .ok_or_else(|| "pair assertion needs a `metric` (top-level or per side)".to_owned())
}

fn describe_side(side: &CellSel, default: &Option<String>) -> String {
    let metric = side.metric.as_deref().or(default.as_deref()).unwrap_or("?");
    let mut s = String::new();
    if let Some(sc) = &side.scenario {
        s.push_str(sc);
        s.push('.');
    }
    if let Some(v) = &side.variant {
        s.push_str(v);
        s.push('.');
    }
    s.push_str(metric);
    s
}

/// Renders the byte-stable `lab/v1` document. Volatile metrics appear by
/// name only; everything else is a pure function of `(spec, seed)`.
pub fn lab_json(run: &LabRun) -> Value {
    let spec = &run.spec;
    let labels = |points: &[super::spec::AxisPoint]| {
        Value::Array(
            points
                .iter()
                .map(|p| Value::from(p.label.as_str()))
                .collect(),
        )
    };
    let mut cells = Vec::with_capacity(run.cells.len());
    for cell in &run.cells {
        let mut metrics: Vec<(String, Value)> = Vec::new();
        let mut volatile: Vec<Value> = Vec::new();
        for m in &cell.metrics {
            if m.volatile {
                volatile.push(Value::from(m.name.as_str()));
                continue;
            }
            metrics.push((
                m.name.clone(),
                Value::Object(vec![
                    (
                        "values".into(),
                        Value::Array(m.values.iter().map(|&v| Value::from(v)).collect()),
                    ),
                    ("stats".into(), m.stats.to_json_value()),
                ]),
            ));
        }
        let mut fields = vec![
            ("scenario".into(), Value::from(cell.scenario.as_str())),
            ("variant".into(), Value::from(cell.variant.as_str())),
            ("seed".into(), Value::from(cell.seed)),
            ("metrics".into(), Value::Object(metrics)),
        ];
        if !volatile.is_empty() {
            fields.push(("volatile".into(), Value::Array(volatile)));
        }
        cells.push(Value::Object(fields));
    }
    let assertions = run
        .assertions
        .iter()
        .map(|a| {
            Value::Object(vec![
                ("check".into(), Value::from(a.kind)),
                ("detail".into(), Value::from(a.detail.as_str())),
                ("pass".into(), Value::from(a.pass)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema".into(), Value::from("lab/v1")),
        ("name".into(), Value::from(spec.name.as_str())),
        ("title".into(), Value::from(spec.title.as_str())),
        ("workload".into(), Value::from(spec.workload.as_str())),
        ("base_seed".into(), Value::from(spec.base_seed)),
        ("repeats".into(), Value::from(spec.repeats)),
        ("scenarios".into(), labels(&spec.scenarios)),
        ("variants".into(), labels(&spec.variants)),
        ("cells".into(), Value::Array(cells)),
        ("assertions".into(), Value::Array(assertions)),
        (
            "verdict".into(),
            Value::from(if run.verdict { "pass" } else { "fail" }),
        ),
    ])
}

/// Renders the human comparison table: one scenario × variant table per
/// metric (p50 over repeats; volatile metrics marked), the assertion
/// outcomes, and the sweep telemetry line (with the per-run duration
/// percentiles from [`SweepReport::duration_percentiles`]).
pub fn render(run: &LabRun) -> String {
    let spec = &run.spec;
    let mut out = String::new();
    out.push_str(&format!("\n## {}\n\n", spec.title));
    out.push_str(&format!(
        "workload `{}` · seed {} · {} scenario(s) x {} variant(s) x {} repeat(s)\n",
        spec.workload,
        spec.base_seed,
        spec.scenarios.len(),
        spec.variants.len(),
        spec.repeats,
    ));

    // Union of metric names across cells (cells may differ when scenarios
    // override the workload), headline first, otherwise first-seen order.
    let mut names: Vec<(String, bool)> = Vec::new();
    for cell in &run.cells {
        for m in &cell.metrics {
            if !names.iter().any(|(n, _)| *n == m.name) {
                names.push((m.name.clone(), m.volatile));
            }
        }
    }
    if let Some(headline) = &spec.headline {
        if let Some(pos) = names.iter().position(|(n, _)| n == headline) {
            let h = names.remove(pos);
            names.insert(0, h);
        }
    }
    let variants: Vec<&str> = spec.variants.iter().map(|v| v.label.as_str()).collect();
    for (name, volatile) in &names {
        out.push_str(&format!(
            "\n### {name}{} (p50 of {} repeat(s))\n\n",
            if *volatile { " — volatile" } else { "" },
            spec.repeats
        ));
        out.push_str(&format!("| scenario | {} |\n", variants.join(" | ")));
        out.push_str(&format!("|---|{}\n", "---|".repeat(variants.len())));
        for scenario in &spec.scenarios {
            let row: Vec<String> = variants
                .iter()
                .map(|v| {
                    run.cells
                        .iter()
                        .find(|c| c.scenario == scenario.label && c.variant == *v)
                        .and_then(|c| c.metric(name))
                        .map(|m| fmt(m.stats.p50))
                        .unwrap_or_else(|| "-".to_owned())
                })
                .collect();
            out.push_str(&format!("| {} | {} |\n", scenario.label, row.join(" | ")));
        }
    }
    if !run.assertions.is_empty() {
        out.push_str("\nassertions:\n");
        for a in &run.assertions {
            out.push_str(&format!(
                "- [{}] {}: {}\n",
                if a.pass { "ok" } else { "FAIL" },
                a.kind,
                a.detail
            ));
        }
    }
    out.push_str(&format!(
        "\nverdict: {} · sweep: {}\n",
        if run.verdict { "pass" } else { "fail" },
        run.sweep.summary(),
    ));
    out
}

//! Declarative experiment specs (`lab-spec/v1`).
//!
//! A spec is pure data: scenarios × variants × repeats plus a base seed
//! and a list of declarative assertions. The engine ([`crate::lab`])
//! expands the cross-product into a deterministic run matrix; nothing in
//! a spec is executable, so adding an experiment is a data change.

use serde::json::Value;

/// One point on the scenario or variant axis: a label plus the config
/// fields it contributes to each cell, and an optional workload override
/// (so one spec can mix kernels, e.g. E10's watchdog/breaker/resume
/// parts as sibling scenarios).
#[derive(Debug, Clone)]
pub struct AxisPoint {
    /// Stable label — the row/column name in tables, JSON and assertion
    /// references.
    pub label: String,
    /// Config fields merged into each cell this point participates in.
    pub fields: Vec<(String, Value)>,
    /// Workload override for cells on this point (`None` = spec default).
    pub workload: Option<String>,
}

/// Comparison operator for [`Assertion::Bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `value <= bound`
    Le,
    /// `value >= bound`
    Ge,
    /// `value < bound`
    Lt,
    /// `value > bound`
    Gt,
    /// `|value - bound| <= tol`
    Eq,
}

impl Op {
    fn parse(s: &str) -> Result<Op, String> {
        match s {
            "<=" => Ok(Op::Le),
            ">=" => Ok(Op::Ge),
            "<" => Ok(Op::Lt),
            ">" => Ok(Op::Gt),
            "==" => Ok(Op::Eq),
            other => Err(format!("unknown op `{other}` (want <=, >=, <, >, ==)")),
        }
    }

    /// The operator as written in the spec.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Le => "<=",
            Op::Ge => ">=",
            Op::Lt => "<",
            Op::Gt => ">",
            Op::Eq => "==",
        }
    }
}

/// Required trend direction for [`Assertion::Monotone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `next <= prev * factor + slack`
    NonIncreasing,
    /// `next >= prev * factor - slack`
    NonDecreasing,
    /// `next > prev * factor + slack`
    Increasing,
    /// `next < prev * factor - slack`
    Decreasing,
}

impl Direction {
    fn parse(s: &str) -> Result<Direction, String> {
        match s {
            "non_increasing" => Ok(Direction::NonIncreasing),
            "non_decreasing" => Ok(Direction::NonDecreasing),
            "increasing" => Ok(Direction::Increasing),
            "decreasing" => Ok(Direction::Decreasing),
            other => Err(format!("unknown direction `{other}`")),
        }
    }

    /// The direction as written in the spec.
    pub fn name(self) -> &'static str {
        match self {
            Direction::NonIncreasing => "non_increasing",
            Direction::NonDecreasing => "non_decreasing",
            Direction::Increasing => "increasing",
            Direction::Decreasing => "decreasing",
        }
    }
}

/// A cell reference inside an [`Assertion::Order`] / [`Assertion::Equal`]
/// pair. Axes left `None` in *both* sides of a pair are iterated jointly
/// (the comparison must hold for every scenario/variant); an axis pinned
/// on one side must be pinned on the other.
#[derive(Debug, Clone, Default)]
pub struct CellSel {
    /// Scenario label, or `None` to iterate.
    pub scenario: Option<String>,
    /// Variant label, or `None` to iterate.
    pub variant: Option<String>,
    /// Metric override, or `None` for the assertion-level metric.
    pub metric: Option<String>,
}

impl CellSel {
    fn parse(v: &Value, what: &str) -> Result<CellSel, String> {
        let opt = |key: &str| -> Result<Option<String>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(s) => Ok(Some(
                    s.as_str()
                        .ok_or_else(|| format!("{what}.`{key}` is not a string"))?
                        .to_owned(),
                )),
            }
        };
        Ok(CellSel {
            scenario: opt("scenario")?,
            variant: opt("variant")?,
            metric: opt("metric")?,
        })
    }
}

/// A declarative check over the aggregated cell matrix — the data-form
/// replacement for the hand-coded `assert!`s of the legacy experiments.
#[derive(Debug, Clone)]
pub enum Assertion {
    /// Every matching cell's statistic satisfies `op value`.
    Bound {
        /// Metric name.
        metric: String,
        /// Statistic (`p50` by default; any [`rfsim::Percentiles::stat`]
        /// name).
        stat: String,
        /// Restrict to one scenario (`None` = all).
        scenario: Option<String>,
        /// Restrict to one variant (`None` = all).
        variant: Option<String>,
        /// The comparison.
        op: Op,
        /// The bound.
        value: f64,
        /// Tolerance for [`Op::Eq`].
        tol: f64,
    },
    /// The statistic follows `direction` across consecutive scenarios.
    Monotone {
        /// Metric name.
        metric: String,
        /// Statistic name.
        stat: String,
        /// Restrict to one variant (`None` = every variant must hold).
        variant: Option<String>,
        /// Scenario labels in trend order (`None` = spec order, all).
        scenarios: Option<Vec<String>>,
        /// Trend direction.
        direction: Direction,
        /// Multiplier on the previous value.
        factor: f64,
        /// Additive slack.
        slack: f64,
    },
    /// `lesser < greater * factor - margin` for every joint instance.
    Order {
        /// Default metric for both sides (a side may override).
        metric: Option<String>,
        /// Statistic name.
        stat: String,
        /// The side required to be smaller.
        lesser: CellSel,
        /// The side required to be larger.
        greater: CellSel,
        /// Multiplier on the greater side.
        factor: f64,
        /// Subtracted from the greater side.
        margin: f64,
    },
    /// `|left - right| <= tol` for every joint instance — cross-variant
    /// (or cross-scenario) equality, e.g. batch vs streaming output.
    Equal {
        /// Default metric for both sides (a side may override).
        metric: Option<String>,
        /// Statistic name.
        stat: String,
        /// One side.
        left: CellSel,
        /// The other side.
        right: CellSel,
        /// Absolute tolerance.
        tol: f64,
    },
}

impl Assertion {
    /// The `check` discriminator as written in the spec.
    pub fn kind(&self) -> &'static str {
        match self {
            Assertion::Bound { .. } => "bound",
            Assertion::Monotone { .. } => "monotone",
            Assertion::Order { .. } => "order",
            Assertion::Equal { .. } => "equal",
        }
    }
}

/// A parsed `lab-spec/v1` experiment.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Stable identifier (also the report `name`).
    pub name: String,
    /// Human title for rendered tables.
    pub title: String,
    /// Default workload kernel (see [`crate::lab::workloads`]).
    pub workload: String,
    /// Base seed; every cell derives its own seed from it.
    pub base_seed: u64,
    /// Repeats per cell (percentiles aggregate over repeats).
    pub repeats: usize,
    /// Worker threads (`0` = default pool).
    pub threads: usize,
    /// Metric to lead rendered tables with.
    pub headline: Option<String>,
    /// Config fields shared by every cell.
    pub defaults: Vec<(String, Value)>,
    /// The scenario axis (rows).
    pub scenarios: Vec<AxisPoint>,
    /// The variant axis (columns); a single `base` variant by default.
    pub variants: Vec<AxisPoint>,
    /// Declarative checks over the aggregated matrix.
    pub assertions: Vec<Assertion>,
}

fn parse_fields(v: &Value, what: &str) -> Result<Vec<(String, Value)>, String> {
    let members = v
        .as_object()
        .ok_or_else(|| format!("{what} is not an object"))?;
    Ok(members
        .iter()
        .filter(|(k, _)| k != "label" && k != "workload")
        .map(|(k, f)| (k.clone(), f.clone()))
        .collect())
}

fn parse_axis(v: &Value, what: &str) -> Result<Vec<AxisPoint>, String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("`{what}` is not an array"))?;
    if arr.is_empty() {
        return Err(format!("`{what}` is empty"));
    }
    let mut points = Vec::with_capacity(arr.len());
    for (i, p) in arr.iter().enumerate() {
        let where_ = format!("`{what}[{i}]`");
        let label = p
            .get("label")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{where_} missing string `label`"))?
            .to_owned();
        if points.iter().any(|q: &AxisPoint| q.label == label) {
            return Err(format!("{where_}: duplicate label `{label}`"));
        }
        let workload = match p.get("workload") {
            None => None,
            Some(w) => Some(
                w.as_str()
                    .ok_or_else(|| format!("{where_}.`workload` is not a string"))?
                    .to_owned(),
            ),
        };
        points.push(AxisPoint {
            label,
            fields: parse_fields(p, &where_)?,
            workload,
        });
    }
    Ok(points)
}

fn opt_f64(v: &Value, key: &str, default: f64, what: &str) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| format!("{what}.`{key}` is not a finite number")),
    }
}

fn opt_str(v: &Value, key: &str, default: &str, what: &str) -> Result<String, String> {
    match v.get(key) {
        None => Ok(default.to_owned()),
        Some(x) => Ok(x
            .as_str()
            .ok_or_else(|| format!("{what}.`{key}` is not a string"))?
            .to_owned()),
    }
}

fn opt_label(v: &Value, key: &str, what: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => Ok(Some(
            x.as_str()
                .ok_or_else(|| format!("{what}.`{key}` is not a string"))?
                .to_owned(),
        )),
    }
}

fn parse_assertion(v: &Value, i: usize) -> Result<Assertion, String> {
    let what = format!("`assertions[{i}]`");
    let check = v
        .get("check")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what} missing string `check`"))?;
    let stat = opt_str(v, "stat", "p50", &what)?;
    let metric = opt_label(v, "metric", &what)?;
    let require_metric = || {
        metric
            .clone()
            .ok_or_else(|| format!("{what} missing string `metric`"))
    };
    match check {
        "bound" => Ok(Assertion::Bound {
            metric: require_metric()?,
            stat,
            scenario: opt_label(v, "scenario", &what)?,
            variant: opt_label(v, "variant", &what)?,
            op: Op::parse(
                v.get("op")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("{what} missing string `op`"))?,
            )
            .map_err(|e| format!("{what}: {e}"))?,
            value: v
                .get("value")
                .and_then(Value::as_f64)
                .filter(|x| x.is_finite())
                .ok_or_else(|| format!("{what} missing finite `value`"))?,
            tol: opt_f64(v, "tol", 0.0, &what)?,
        }),
        "monotone" => {
            let scenarios = match v.get("scenarios") {
                None => None,
                Some(list) => {
                    let arr = list
                        .as_array()
                        .ok_or_else(|| format!("{what}.`scenarios` is not an array"))?;
                    let mut labels = Vec::with_capacity(arr.len());
                    for s in arr {
                        labels.push(
                            s.as_str()
                                .ok_or_else(|| {
                                    format!("{what}.`scenarios` has a non-string entry")
                                })?
                                .to_owned(),
                        );
                    }
                    Some(labels)
                }
            };
            Ok(Assertion::Monotone {
                metric: require_metric()?,
                stat,
                variant: opt_label(v, "variant", &what)?,
                scenarios,
                direction: Direction::parse(
                    v.get("direction")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("{what} missing string `direction`"))?,
                )
                .map_err(|e| format!("{what}: {e}"))?,
                factor: opt_f64(v, "factor", 1.0, &what)?,
                slack: opt_f64(v, "slack", 0.0, &what)?,
            })
        }
        "order" | "equal" => {
            let side = |key: &str| -> Result<CellSel, String> {
                match v.get(key) {
                    None => Ok(CellSel::default()),
                    Some(s) => CellSel::parse(s, &format!("{what}.`{key}`")),
                }
            };
            if check == "order" {
                let (lesser, greater) = (side("lesser")?, side("greater")?);
                check_pair_pins(&lesser, &greater, &what)?;
                Ok(Assertion::Order {
                    metric,
                    stat,
                    lesser,
                    greater,
                    factor: opt_f64(v, "factor", 1.0, &what)?,
                    margin: opt_f64(v, "margin", 0.0, &what)?,
                })
            } else {
                let (left, right) = (side("left")?, side("right")?);
                check_pair_pins(&left, &right, &what)?;
                Ok(Assertion::Equal {
                    metric,
                    stat,
                    left,
                    right,
                    tol: opt_f64(v, "tol", 0.0, &what)?,
                })
            }
        }
        other => Err(format!("{what}: unknown check `{other}`")),
    }
}

/// An axis pinned on one side of a pair comparison must be pinned on the
/// other — "compare `snr8` against every scenario" is ambiguous.
fn check_pair_pins(a: &CellSel, b: &CellSel, what: &str) -> Result<(), String> {
    if a.scenario.is_some() != b.scenario.is_some() {
        return Err(format!(
            "{what}: `scenario` must be pinned on both sides or neither"
        ));
    }
    if a.variant.is_some() != b.variant.is_some() {
        return Err(format!(
            "{what}: `variant` must be pinned on both sides or neither"
        ));
    }
    Ok(())
}

impl ExperimentSpec {
    /// Parses a `lab-spec/v1` document.
    ///
    /// # Errors
    ///
    /// A message naming the first malformed or missing field.
    pub fn parse(doc: &Value) -> Result<ExperimentSpec, String> {
        if doc.get("schema").and_then(Value::as_str) != Some("lab-spec/v1") {
            return Err("missing or wrong `schema` (want \"lab-spec/v1\")".into());
        }
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .ok_or("missing non-empty string `name`")?
            .to_owned();
        let workload = doc
            .get("workload")
            .and_then(Value::as_str)
            .filter(|s| !s.is_empty())
            .ok_or("missing non-empty string `workload`")?
            .to_owned();
        let base_seed = doc
            .get("base_seed")
            .and_then(Value::as_u64)
            .ok_or("missing integer `base_seed`")?;
        let repeats = match doc.get("repeats") {
            None => 1,
            Some(r) => {
                let r = r.as_u64().ok_or("`repeats` is not an integer")? as usize;
                if r == 0 {
                    return Err("`repeats` must be at least 1".into());
                }
                r
            }
        };
        let threads = match doc.get("threads") {
            None => 0,
            Some(t) => t.as_u64().ok_or("`threads` is not an integer")? as usize,
        };
        let defaults = match doc.get("defaults") {
            None => Vec::new(),
            Some(d) => d.as_object().ok_or("`defaults` is not an object")?.to_vec(),
        };
        let scenarios = parse_axis(
            doc.get("scenarios").ok_or("missing array `scenarios`")?,
            "scenarios",
        )?;
        let variants = match doc.get("variants") {
            None => vec![AxisPoint {
                label: "base".to_owned(),
                fields: Vec::new(),
                workload: None,
            }],
            Some(v) => parse_axis(v, "variants")?,
        };
        let assertions = match doc.get("assertions") {
            None => Vec::new(),
            Some(a) => {
                let arr = a.as_array().ok_or("`assertions` is not an array")?;
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| parse_assertion(v, i))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        Ok(ExperimentSpec {
            title: opt_str(doc, "title", &name, "spec")?,
            headline: opt_label(doc, "headline", "spec")?,
            name,
            workload,
            base_seed,
            repeats,
            threads,
            defaults,
            scenarios,
            variants,
            assertions,
        })
    }

    /// Reads and parses a spec file.
    ///
    /// # Errors
    ///
    /// IO, JSON or spec-shape failures, prefixed with the path.
    pub fn load(path: &std::path::Path) -> Result<ExperimentSpec, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = serde::json::parse(&text)
            .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        ExperimentSpec::parse(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Total flat run count: scenarios × variants × repeats.
    pub fn run_count(&self) -> usize {
        self.scenarios.len() * self.variants.len() * self.repeats
    }

    /// Splits a flat run index into `(scenario, variant, repeat)`
    /// indices; repeat is the fastest-varying axis.
    pub fn decompose(&self, index: usize) -> (usize, usize, usize) {
        let per_scenario = self.variants.len() * self.repeats;
        (
            index / per_scenario,
            (index % per_scenario) / self.repeats,
            index % self.repeats,
        )
    }

    /// The deterministic label checkpoints are validated against.
    pub fn checkpoint_label(&self) -> String {
        format!(
            "lab/{}/{}x{}x{}/seed{}",
            self.name,
            self.scenarios.len(),
            self.variants.len(),
            self.repeats,
            self.base_seed,
        )
    }
}

//! Closed-form BER references for validating measured waterfall curves.
//!
//! These are the textbook expressions the end-to-end TX→channel→RX loop
//! is checked against in `tests/ber_theory.rs`: exact Gray-coded QPSK and
//! 16-QAM bit-error rates over AWGN, and the flat-Rayleigh average for
//! QPSK with perfect channel state information. All take the per-bit SNR
//! `γb = Eb/N0` as a linear ratio (not dB).

/// The Gaussian tail function `Q(x) = P[N(0,1) > x]`.
///
/// Computed as `½·erfc(x/√2)` with the Abramowitz–Stegun 7.1.26
/// rational approximation (absolute error < 1.5·10⁻⁷ — far below the
/// statistical resolution of any Monte-Carlo BER run this repo does).
pub fn q_function(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q_function(-x);
    }
    // erfc(z) for z = x/√2 ≥ 0.
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erfc = poly * (-z * z).exp();
    0.5 * erfc
}

/// Converts a dB value to a linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Exact Gray-coded QPSK bit-error rate over AWGN: `Q(√(2γb))`.
pub fn qpsk_ber_awgn(gamma_b: f64) -> f64 {
    q_function((2.0 * gamma_b).sqrt())
}

/// Exact Gray-coded square 16-QAM bit-error rate over AWGN.
///
/// With per-symbol SNR `γs = 4γb` and `q = √(γs/5)`:
/// `BER = ¾·Q(q) + ½·Q(3q) − ¼·Q(5q)` — the exact average over both
/// bits of each I/Q PAM-4 component, not the nearest-neighbour bound.
pub fn qam16_ber_awgn(gamma_b: f64) -> f64 {
    let gamma_s = 4.0 * gamma_b;
    let q = (gamma_s / 5.0).sqrt();
    0.75 * q_function(q) + 0.5 * q_function(3.0 * q) - 0.25 * q_function(5.0 * q)
}

/// Average Gray-coded QPSK bit-error rate over flat Rayleigh fading with
/// perfect channel knowledge: `½·(1 − √(γ̄b/(1+γ̄b)))` for mean per-bit
/// SNR `γ̄b`.
pub fn qpsk_ber_rayleigh(mean_gamma_b: f64) -> f64 {
    0.5 * (1.0 - (mean_gamma_b / (1.0 + mean_gamma_b)).sqrt())
}

/// Standard deviation of a measured BER estimate: `√(p(1−p)/n)` for true
/// error probability `p` over `n` independent bits (binomial sampling).
pub fn ber_sigma(p: f64, bits: u64) -> f64 {
    if bits == 0 {
        return 0.0;
    }
    (p * (1.0 - p) / bits as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((q_function(2.0) - 0.022_750_1).abs() < 1e-6);
        assert!((q_function(4.0) - 3.167_1e-5).abs() < 1e-7);
        // Symmetry Q(-x) = 1 - Q(x).
        assert!((q_function(-1.5) + q_function(1.5) - 1.0).abs() < 1e-12);
        // Monotone decreasing.
        let mut prev = 1.0;
        for i in 0..60 {
            let v = q_function(i as f64 * 0.1);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn qpsk_curve_hits_textbook_points() {
        // Eb/N0 = 4 dB → BER ≈ 1.25e-2; 8 dB → ≈ 1.9e-4.
        let b4 = qpsk_ber_awgn(db_to_linear(4.0));
        assert!((b4 - 1.25e-2).abs() / 1.25e-2 < 0.02, "{b4}");
        let b8 = qpsk_ber_awgn(db_to_linear(8.0));
        assert!((b8 - 1.91e-4).abs() / 1.91e-4 < 0.03, "{b8}");
    }

    #[test]
    fn qam16_needs_about_4db_more_than_qpsk() {
        // At equal BER ~1e-3, 16-QAM needs ≈ 4 dB higher Eb/N0.
        let target = qpsk_ber_awgn(db_to_linear(6.8));
        let q16 = qam16_ber_awgn(db_to_linear(10.8));
        assert!(
            (q16.log10() - target.log10()).abs() < 0.35,
            "qpsk {target:.3e} vs 16qam {q16:.3e}"
        );
        // And 16-QAM is always worse at the same γb.
        for db in [0.0, 4.0, 8.0, 12.0] {
            let g = db_to_linear(db);
            assert!(qam16_ber_awgn(g) > qpsk_ber_awgn(g));
        }
    }

    #[test]
    fn rayleigh_average_dominates_awgn() {
        for db in [0.0, 5.0, 10.0, 20.0] {
            let g = db_to_linear(db);
            assert!(qpsk_ber_rayleigh(g) > qpsk_ber_awgn(g));
        }
        // High-SNR asymptote: BER → 1/(4γ̄).
        let g = db_to_linear(30.0);
        let asym = 1.0 / (4.0 * g);
        let exact = qpsk_ber_rayleigh(g);
        assert!((exact - asym).abs() / asym < 0.01);
    }

    #[test]
    fn sigma_shrinks_with_sample_count() {
        assert!(ber_sigma(0.01, 10_000) < ber_sigma(0.01, 100));
        assert_eq!(ber_sigma(0.5, 0), 0.0);
        assert!((ber_sigma(0.5, 100) - 0.05).abs() < 1e-12);
    }
}

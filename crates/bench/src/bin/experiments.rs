//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Run all experiments (release build strongly recommended):
//!
//! ```text
//! cargo run -p ofdm-bench --release --bin experiments
//! ```
//!
//! or a subset: `… --bin experiments -- e1 e3 e6`.
//!
//! Machine-readable telemetry (the C3 claim, decomposed per block and per
//! transmitter stage):
//!
//! ```text
//! … --bin experiments -- --emit-bench BENCH_ofdm.json [--bench-symbols N]
//! … --bin experiments -- --check-bench BENCH_ofdm.json
//! ```
//!
//! Fault-injection smoke sweep (E9 alone): `… --bin experiments -- --faults`.
//!
//! Supervised-runtime smoke sweep (E10 alone): `… --bin experiments -- --supervise`.
//!
//! BER-vs-SNR waterfall smoke (fixed seed, machine-readable output):
//!
//! ```text
//! … --bin experiments -- --waterfall waterfall.json
//! ```

use ofdm_bench::waterfall::{
    qpsk_reference_curve, run_waterfall, waterfall_json, ChannelProfile, WaterfallSpec,
};
use ofdm_bench::{
    evm_after_gain_correction, fmt_secs, loopback_errors, payload_bits, time_per_run,
    transmit_frame,
};
use ofdm_core::source::OfdmSource;
use ofdm_core::{MotherModel, StreamState};
use ofdm_rtl::{FxFormat, Tx80211aRtl};
use ofdm_standards::ieee80211a::{self, WlanRate};
use ofdm_standards::{default_params, StandardId};
use rfsim::prelude::*;
use serde::json::Value;
use std::time::Duration;

const EXPERIMENTS: [&str; 11] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut emit_bench: Option<String> = None;
    let mut check_bench: Option<String> = None;
    let mut waterfall_out: Option<String> = None;
    let mut bench_symbols = 50usize;
    let mut names: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--emit-bench" => {
                emit_bench = Some(it.next().ok_or("--emit-bench needs a file path")?);
            }
            "--check-bench" => {
                check_bench = Some(it.next().ok_or("--check-bench needs a file path")?);
            }
            "--waterfall" => {
                waterfall_out = Some(it.next().ok_or("--waterfall needs a file path")?);
            }
            "--bench-symbols" => {
                bench_symbols = it
                    .next()
                    .ok_or("--bench-symbols needs a count")?
                    .parse()
                    .map_err(|e| format!("--bench-symbols: {e}"))?;
            }
            // The fault smoke sweep is experiment E9 under a flag name.
            "--faults" => names.push("e9".into()),
            // The supervised-runtime smoke sweep is E10 under a flag name.
            "--supervise" => names.push("e10".into()),
            name if EXPERIMENTS.contains(&name) => names.push(arg),
            bad => {
                eprintln!(
                    "error: unknown argument `{bad}`; experiments: {}; flags: \
                     --emit-bench FILE, --check-bench FILE, --bench-symbols N, --faults, \
                     --supervise, --waterfall FILE",
                    EXPERIMENTS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &emit_bench {
        emit_bench_json(path, bench_symbols)?;
    }
    if let Some(path) = &waterfall_out {
        emit_waterfall_json(path)?;
    }
    if let Some(path) = &check_bench {
        check_bench_json(path)?;
    }
    if (emit_bench.is_some() || check_bench.is_some() || waterfall_out.is_some())
        && names.is_empty()
    {
        return Ok(());
    }
    let want = |name: &str| names.is_empty() || names.iter().any(|a| a == name);

    if want("e1") {
        e1_reconfiguration_matrix()?;
    }
    if want("e2") {
        e2_cosimulation()?;
    }
    if want("e3") {
        e3_simulation_time()?;
    }
    if want("e4") {
        e4_design_effort();
    }
    if want("e5") {
        e5_equivalence();
    }
    if want("e6") {
        e6_impairments()?;
    }
    if want("e7") {
        e7_ber_waterfall()?;
    }
    if want("e8") {
        e8_dab_mobile()?;
    }
    if want("e9") {
        e9_fault_sweep()?;
    }
    if want("e10") {
        e10_supervision()?;
    }
    if want("e11") {
        e11_waterfall()?;
    }
    Ok(())
}

/// The fixed-seed waterfall smoke grid behind `--waterfall`: two
/// standards × four SNR points, small enough for CI, deterministic
/// enough that the emitted `waterfall.json` is byte-stable across runs
/// and machines (BER tallies carry no timing).
fn waterfall_smoke_spec() -> WaterfallSpec {
    WaterfallSpec {
        standards: vec![StandardId::Ieee80211a, StandardId::Dab],
        snr_db: vec![0.0, 6.0, 12.0, 18.0],
        realizations: 3,
        payload_bits: 2000,
        base_seed: 0xE11,
        profile: ChannelProfile::Awgn,
        threads: 0,
    }
}

/// `--waterfall FILE` — runs the fixed-seed smoke grid through the
/// checkpointed sweep path and writes the `waterfall/v1` document.
fn emit_waterfall_json(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let spec = waterfall_smoke_spec();
    let ckpt = std::path::Path::new(path).with_extension("ckpt.json");
    let report = run_waterfall(&spec, Some(&ckpt))?;
    let doc = waterfall_json(&spec, &report);
    std::fs::write(path, format!("{doc}\n"))?;
    println!(
        "wrote {path}: {} standards x {} SNR points x {} realizations ({} resumed)",
        spec.standards.len(),
        spec.snr_db.len(),
        spec.realizations,
        report.resumed,
    );
    Ok(())
}

/// E11 — BER-vs-SNR waterfalls through the channel suite: per-standard
/// AWGN curves sharded across the sweep pool next to the closed-form
/// uncoded QPSK reference, and a frequency-selective Rayleigh curve with
/// perfect-CSI equalization.
fn e11_waterfall() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## E11 — BER-vs-SNR waterfall sweeps over the channel suite\n");

    let spec = WaterfallSpec {
        standards: vec![StandardId::Ieee80211a, StandardId::Dab, StandardId::DvbT],
        snr_db: vec![0.0, 6.0, 12.0, 18.0, 24.0],
        realizations: 4,
        payload_bits: 2400,
        base_seed: 0xE11,
        profile: ChannelProfile::Awgn,
        threads: 0,
    };
    let report = run_waterfall(&spec, None)?;
    let reference = qpsk_reference_curve(&spec.snr_db);
    println!("AWGN curves (coded standards vs uncoded QPSK theory):\n");
    let keys: Vec<&str> = spec.standards.iter().map(|s| s.key()).collect();
    println!("| SNR (dB) | {} | uncoded QPSK theory |", keys.join(" | "));
    println!("|---|{}---|", "---|".repeat(keys.len()));
    for (g, &snr) in spec.snr_db.iter().enumerate() {
        let row: Vec<String> = report
            .curves
            .iter()
            .map(|c| format!("{:.2e}", c.points[g].ber()))
            .collect();
        println!("| {snr:.0} | {} | {:.2e} |", row.join(" | "), reference[g]);
    }
    for curve in &report.curves {
        let bers: Vec<f64> = curve.points.iter().map(|p| p.ber()).collect();
        assert!(
            bers.windows(2).all(|w| w[1] <= w[0] + 1e-3),
            "{}: BER must fall with SNR: {bers:?}",
            curve.standard.key()
        );
        assert!(
            bers.last().expect("nonempty") < bers.first().expect("nonempty"),
            "{}: waterfall must descend across the grid",
            curve.standard.key()
        );
    }

    let fading_spec = WaterfallSpec {
        standards: vec![StandardId::Ieee80211a],
        snr_db: vec![10.0, 20.0, 30.0],
        realizations: 12,
        payload_bits: 1200,
        base_seed: 0xFAD,
        profile: ChannelProfile::Rayleigh {
            paths: vec![(0, 0.6), (2, 0.3), (5, 0.1)],
        },
        threads: 0,
    };
    let fading = run_waterfall(&fading_spec, None)?;
    println!("\nFrequency-selective Rayleigh (3 taps, perfect-CSI equalization), 802.11a:\n");
    println!("| SNR (dB) | BER | errors/bits |");
    println!("|---|---|---|");
    for (g, &snr) in fading_spec.snr_db.iter().enumerate() {
        let p = &fading.curves[0].points[g];
        println!("| {snr:.0} | {:.2e} | {}/{} |", p.ber(), p.errors, p.bits);
    }
    let fad: Vec<f64> = fading.curves[0].points.iter().map(|p| p.ber()).collect();
    assert!(
        fad.windows(2).all(|w| w[1] <= w[0]),
        "fading waterfall must descend: {fad:?}"
    );
    Ok(())
}

/// The 64-scenario fault-injection sweep behind E9 and the bench JSON: a
/// deterministic mix of clean, panicking, NaN-emitting and sample-dropping
/// scenarios, with the [`FaultPlan`] rotating over three wrapped block
/// types (soft-clip PA, Rapp PA, AWGN channel). Panicking scenarios
/// recover on their retry (reseeded with a zero panic rate); NaN scenarios
/// trip the graph's non-finite guard on every attempt and end `Faulted`.
fn run_fault_sweep() -> (Vec<ScenarioOutcome<f64>>, SweepReport) {
    // The injected panics are caught and accounted by the runner; the
    // default hook would still print 16 backtraces into the report. Mute
    // it for the sweep (the worker threads are the only panickers here).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = SweepPlan::new(64).with_retry(RetryPolicy::retries(1)).run(
        |i, attempt, _ctx| -> Result<f64, SimError> {
            let seed = scenario_seed(0xFA17, i) ^ u64::from(attempt);
            let plan = match i % 4 {
                0 => FaultPlan::new(),
                1 => FaultPlan::new().with_panic_rate(if attempt == 0 { 1.0 } else { 0.0 }),
                2 => FaultPlan::new().with_nan_rate(1.0),
                _ => FaultPlan::new().with_drop_rate(0.25),
            };
            let mut g = Graph::new();
            g.guard_non_finite(true);
            let src = g.add(ToneSource::new(1.0e6, 20.0e6, 2048));
            let impaired = match (i / 4) % 3 {
                0 => g.add(plan.wrap(seed, SoftClipPa::new(1.0))),
                1 => g.add(plan.wrap(seed, RappPa::new(1.0, 3.0))),
                _ => g.add(plan.wrap(seed, AwgnChannel::from_snr_db(30.0, seed))),
            };
            let meter = g.add(PowerMeter::new());
            g.chain(&[src, impaired, meter])?;
            g.run()?;
            Ok(g.block::<PowerMeter>(meter)
                .expect("present")
                .power()
                .expect("ran"))
        },
    );
    std::panic::set_hook(prev_hook);
    result
}

/// E9 — fault-injection sweep (graceful degradation): survival rate of a
/// 64-scenario sweep under injected panics/NaNs/erasures, and degraded-mode
/// EVM vs sample-drop rate.
fn e9_fault_sweep() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## E9 — Fault-injection sweep: survival & degraded-mode EVM\n");
    let (outcomes, report) = run_fault_sweep();
    let faults = report.faults.expect("resilient sweep reports faults");
    println!("| outcome | scenarios |");
    println!("|---|---|");
    println!("| succeeded first try | {} |", faults.succeeded);
    println!("| retried then succeeded | {} |", faults.retried);
    println!("| faulted (all attempts) | {} |", faults.faulted);
    println!(
        "\ncaught: {} panics, {} typed errors; survival rate {:.1}%",
        faults.panics_caught,
        faults.errors_caught,
        faults.survival_rate() * 100.0,
    );
    // The injected-fault pattern (i % 4 over 64 scenarios, one retry) fixes
    // the outcome counts exactly; anything else is a regression in the
    // fault layer or the runner.
    assert_eq!(outcomes.len(), 64, "sweep must complete every scenario");
    assert_eq!(faults.succeeded, 32, "clean + dropper scenarios");
    assert_eq!(faults.retried, 16, "panic scenarios recover on retry");
    assert_eq!(faults.faulted, 16, "NaN scenarios fault on both attempts");
    assert_eq!(faults.panics_caught, 16);
    assert_eq!(faults.errors_caught, 32);

    println!("\nEVM vs sample-drop rate (802.11a QPSK through a SampleDropper):\n");
    println!("| drop rate | EVM (dB) |");
    println!("|---|---|");
    let p = ieee80211a::params(WlanRate::Mbps12);
    let frame = transmit_frame(&p, 4800, 9);
    let rates = [0.001f64, 0.005, 0.02, 0.08];
    let (evms, _) = SweepPlan::new(rates.len()).run_fail_fast(|i| -> Result<f64, String> {
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::new(frame.signal().clone()));
        let dropper = g.add(SampleDropper::new(rates[i], 7));
        g.chain(&[src, dropper]).map_err(|e| e.to_string())?;
        g.run().map_err(|e| e.to_string())?;
        let out = g.output(dropper).expect("ran");
        // Average over the whole frame: at the lowest drop rate only a
        // handful of samples are erased, and a short measurement window
        // could miss them all.
        Ok(evm_after_gain_correction(&p, &frame, out, 50))
    })?;
    for (&rate, &evm) in rates.iter().zip(&evms) {
        println!("| {rate} | {evm:.1} |");
    }
    assert!(
        evms.windows(2).all(|w| w[1] > w[0]),
        "EVM must degrade as the drop rate rises: {evms:?}"
    );
    Ok(())
}

/// Mean tone power through an AWGN channel and a soft limiter — the
/// deterministic per-`(seed, index)` scenario both E10 sweeps share.
fn e10_scenario_power(seed: u64, i: usize) -> Result<f64, SimError> {
    let mut g = Graph::new();
    let src = g.add(ToneSource::new(1.0e6, 20.0e6, 1024));
    let ch = g.add(AwgnChannel::from_snr_db(
        10.0 + i as f64,
        scenario_seed(seed, i),
    ));
    let pa = g.add(SoftClipPa::new(1.0));
    let meter = g.add(PowerMeter::new());
    g.chain(&[src, ch, pa, meter])?;
    g.run()?;
    Ok(g.block::<PowerMeter>(meter)
        .expect("present")
        .power()
        .expect("ran"))
}

/// E10 — supervised execution runtime: watchdog deadline kills on hung
/// scenarios, circuit-breaker degraded mode with pass-through output,
/// essential-block fail-fast, and checkpoint/resume exactness.
fn e10_supervision() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## E10 — Supervised execution: deadlines, breakers, checkpoint/resume\n");

    // Part A — watchdog. Every 4th scenario hangs on a stalled source and
    // must be cancelled within the per-scenario budget; the rest compute
    // real channel powers, undisturbed by their neighbours being killed.
    let budget = Duration::from_millis(300);
    let supervisor = SweepSupervisor::new()
        .with_scenario_budget(budget)
        .with_poll_interval(Duration::from_millis(2));
    let started = std::time::Instant::now();
    let (outcomes, report) = SweepPlan::new(16)
        .threads(4)
        .with_supervisor(supervisor)
        .run(|i, _attempt, ctx| -> Result<f64, SimError> {
            if i % 4 == 3 {
                let mut g = Graph::new();
                let src = g.add(StalledSource::new(20.0e6, Duration::from_millis(2)));
                let pa = g.add(SoftClipPa::new(1.0));
                g.chain(&[src, pa])?;
                ctx.supervise(&mut g);
                g.run_streaming(64)?;
            }
            e10_scenario_power(0xE10, i)
        });
    let faults = report.faults.expect("supervised sweep reports faults");
    let sup = report
        .supervision
        .expect("supervised sweep reports supervision");
    println!(
        "watchdog sweep: 16 scenarios, 4 hung, {} ms budget per scenario\n",
        budget.as_millis()
    );
    println!("| outcome | scenarios |");
    println!("|---|---|");
    println!("| succeeded | {} |", faults.succeeded);
    println!("| killed by deadline, then faulted | {} |", faults.faulted);
    println!(
        "\nsweep wall time {} (hung scenarios do not stall the sweep)",
        fmt_secs(started.elapsed().as_secs_f64())
    );
    assert_eq!(outcomes.len(), 16, "sweep must complete every scenario");
    assert_eq!(faults.succeeded, 12, "healthy scenarios are undisturbed");
    assert_eq!(faults.faulted, 4, "hung scenarios end Faulted");
    assert_eq!(
        sup.deadline_kills, 4,
        "each hung scenario killed exactly once"
    );

    // Part B — circuit breaker. An impairment that fails every invocation
    // trips its breaker on the first chunk; the rest of the streaming pass
    // bypasses it, completing Degraded with exact pass-through output.
    let mut clean = Graph::new();
    let src = clean.add(ToneSource::new(1.0e6, 20.0e6, 4096));
    let pa = clean.add(SoftClipPa::new(1.0));
    clean.chain(&[src, pa])?;
    clean.probe(pa)?;
    clean.run_streaming(256)?;
    let clean_out = clean.output(pa).expect("probed").clone();

    let mut g = Graph::new();
    let src = g.add(ToneSource::new(1.0e6, 20.0e6, 4096));
    let bad = g.add(
        FaultPlan::new()
            .with_error_rate(1.0)
            .wrap(0xB10, NanInjector::new(1.0, 7)),
    );
    let pa = g.add(SoftClipPa::new(1.0));
    g.chain(&[src, bad, pa])?;
    g.probe(pa)?;
    g.set_breaker_policy(Some(BreakerPolicy::new().with_threshold(1)));
    let run = g.run_streaming_instrumented(256)?;
    println!(
        "\nbreaker degraded mode: health {}, {} trip(s), {} invocation(s) bypassed",
        run.health, run.breaker_trips, run.bypassed_invocations
    );
    assert_eq!(run.health, Health::Degraded);
    assert_eq!(run.breaker_trips, 1, "threshold 1 trips on the first chunk");
    assert!(run.bypassed_invocations >= 8, "remaining chunks bypassed");
    let out = g.output(pa).expect("probed");
    assert_eq!(
        out.samples(),
        clean_out.samples(),
        "bypass must be exact pass-through"
    );

    // An essential block (here the source) is never bypassed: once its
    // breaker opens, runs fail fast without touching the graph.
    let mut g = Graph::new();
    let src = g.add(
        FaultPlan::new()
            .with_error_rate(1.0)
            .wrap(0xE55, ToneSource::new(1.0e6, 20.0e6, 256)),
    );
    let pa = g.add(SoftClipPa::new(1.0));
    g.chain(&[src, pa])?;
    g.set_breaker_policy(Some(BreakerPolicy::new().with_threshold(2)));
    for _ in 0..2 {
        assert!(g.run().is_err(), "injector always faults");
    }
    match g.run() {
        Err(SimError::BlockFault { fault, .. }) if fault.contains("circuit breaker open") => {
            println!("essential fail-fast: {fault}");
        }
        other => return Err(format!("expected open-breaker fail-fast, got {other:?}").into()),
    }

    // Part C — checkpoint/resume exactness. A sweep whose back half fails
    // (standing in for a killed process) persists its front half; the
    // restarted sweep re-runs only the missing scenarios, and the merged
    // report is outcome-for-outcome identical to an uninterrupted one.
    const COUNT: usize = 12;
    let path = std::env::temp_dir().join(format!("rfsim-e10-resume-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut reference = SweepCheckpoint::load_or_new("/nonexistent/e10-reference", "e10", COUNT);
    let plan = SweepPlan::new(COUNT).threads(4);
    let (uninterrupted, _) = plan.run_checkpointed(&mut reference, |i, _attempt, _ctx| {
        e10_scenario_power(0xC10, i)
    });
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "e10", COUNT).with_batch(4);
    let _ = plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| {
        if i >= COUNT / 2 {
            return Err(SimError::BlockFailure {
                block: "e10".into(),
                message: "interrupted".into(),
            });
        }
        e10_scenario_power(0xC10, i)
    });
    drop(ckpt);
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "e10", COUNT);
    assert_eq!(ckpt.len(), COUNT / 2, "front half persisted to disk");
    let (resumed, resumed_report) =
        plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| e10_scenario_power(0xC10, i));
    let resumed_sup = resumed_report
        .supervision
        .expect("checkpointed sweep reports supervision");
    println!(
        "\ncheckpoint/resume: {} of {COUNT} scenarios restored from disk, {} re-run",
        resumed_sup.resumed,
        COUNT - resumed_sup.resumed
    );
    assert_eq!(resumed_sup.resumed, COUNT / 2);
    assert_eq!(resumed_report.faults.expect("present").succeeded, COUNT);
    assert_eq!(uninterrupted.len(), resumed.len());
    for (i, (a, b)) in uninterrupted.iter().zip(&resumed).enumerate() {
        assert_eq!(a.result(), b.result(), "scenario {i} differs after resume");
    }
    ckpt.discard()?;
    println!("resume exactness: merged sweep identical to the uninterrupted reference");
    Ok(())
}

/// E8 — DAB mobile reception (Table 8): differential DQPSK BER vs Doppler
/// over a Rayleigh channel, the broadcast-family counterpart of E6.
fn e8_dab_mobile() -> Result<(), Box<dyn std::error::Error>> {
    use ofdm_rx::receiver::ReferenceReceiver;
    use ofdm_standards::dab::{self, TxMode};

    println!("\n## E8 — DAB mode I over Rayleigh fading vs Doppler (Table 8)\n");
    println!("| Doppler (Hz) | ≈ speed at VHF (km/h) | BER |");
    println!("|---|---|---|");
    let params = dab::params(TxMode::I);
    let sent = payload_bits(6000, 31);
    let mut tx = MotherModel::new(params.clone())?;
    let frame = tx.transmit(&sent)?;
    // Each Doppler point is an independent graph simulation: fan them out
    // over the scenario runner (results come back in sweep order).
    let dopplers = [2.0f64, 20.0, 100.0, 250.0, 500.0];
    let (bers, _) = SweepPlan::new(dopplers.len()).run_fail_fast(|i| -> Result<f64, String> {
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::new(frame.signal().clone()));
        let fading = g.add(RayleighChannel::new(
            vec![(0, 0.7), (30, 0.3)],
            dopplers[i],
            3,
        ));
        let noise = g.add(AwgnChannel::from_snr_db(28.0, 9));
        g.chain(&[src, fading, noise]).map_err(|e| e.to_string())?;
        g.run().map_err(|e| e.to_string())?;
        let received = g.output(noise).expect("ran");
        let mut rx = ReferenceReceiver::new(params.clone()).map_err(|e| e.to_string())?;
        let got = rx
            .receive(received, sent.len())
            .map_err(|e| e.to_string())?;
        Ok(sent.iter().zip(&got).filter(|(a, b)| a != b).count() as f64 / sent.len() as f64)
    })?;
    for (&doppler, &ber) in dopplers.iter().zip(&bers) {
        // VHF band III ≈ 200 MHz: v = f_d·c/f ≈ f_d · 5.4 km/h per Hz.
        println!("| {doppler:.0} | {:.0} | {ber:.2e} |", doppler * 5.4);
    }
    assert!(
        bers.last().expect("nonempty") > bers.first().expect("nonempty"),
        "fast fading must raise DQPSK BER"
    );
    Ok(())
}

/// E1 — one Mother Model reconfigures into all ten standards; loopback
/// BER is zero for each (Table 1).
fn e1_reconfiguration_matrix() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## E1 — Reconfiguration matrix (Table 1)\n");
    println!(
        "| standard | FFT | guard | data carriers | fs (MHz) | Tsym (µs) | PAPR (dB) | loopback errors |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for id in StandardId::ALL {
        let p = default_params(id);
        // Fill ≥4 OFDM symbols completely so PAPR reflects random data,
        // not zero-padding.
        let n_bits = 4 * p.nominal_bits_per_symbol().max(100);
        let frame = transmit_frame(&p, n_bits, 17);
        let errors = loopback_errors(&p, n_bits, 17);
        println!(
            "| {} | {} | {} | {} | {:.3} | {:.1} | {:.1} | {} |",
            id.key(),
            p.map.fft_size(),
            p.guard.samples(p.map.fft_size()),
            p.map.data_count(),
            p.sample_rate / 1e6,
            p.symbol_duration() * 1e6,
            frame.signal().papr_db(),
            errors,
        );
        assert_eq!(errors, 0, "{id}: loopback must be error-free");
    }
    Ok(())
}

/// E2 — the three paper-demonstrated standards as signal sources in the
/// RF simulator (Table 2): occupied bandwidth, ACPR, EVM through a clean
/// RF lineup.
fn e2_cosimulation() -> Result<(), Box<dyn std::error::Error>> {
    use ofdm_dsp::resample::Resampler;
    use ofdm_dsp::spectrum::band_power;

    println!("\n## E2 — RF co-simulation of 802.11a / ADSL / DRM (Table 2)\n");
    println!("| standard | OBW 99% (MHz) | OOB @8 dB IBO (dB) | OOB @2 dB IBO (dB) | EVM @8 dB IBO (dB) | EVM @2 dB IBO (dB) |");
    println!("|---|---|---|---|---|---|");
    for id in [StandardId::Ieee80211a, StandardId::Adsl, StandardId::Drm] {
        let p = default_params(id);
        let frame = transmit_frame(&p, 6 * p.nominal_bits_per_symbol().max(100), 5);
        // The nominal occupied band from the carrier allocation.
        let spacing = p.subcarrier_spacing();
        let carriers = p.map.data_carriers();
        let f_hi = (*carriers.last().expect("nonempty map") as f64 + 1.0) * spacing;
        let f_lo = if p.map.is_hermitian() {
            // A real line signal occupies ± the tone band.
            -f_hi
        } else {
            (carriers[0] as f64 - 1.0) * spacing
        };

        // 4× oversampled path: spectral regrowth lands inside Nyquist.
        let mut up = Resampler::new(4, 1, 16);
        let oversampled = Signal::new(up.process(&frame.samples()), p.sample_rate * 4.0);

        // Out-of-band power after the PA, as a ratio to total (dB).
        let oob_after_pa = |backoff: f64| -> Result<f64, SimError> {
            let mut g = Graph::new();
            let src = g.add(SamplePlayback::new(oversampled.clone()));
            let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(backoff));
            let sa = g.add(SpectrumAnalyzer::new(512));
            g.chain(&[src, pa, sa])?;
            g.run()?;
            let sa_ref = g.block::<SpectrumAnalyzer>(sa).expect("present");
            let psd = sa_ref.psd().expect("ran").to_vec();
            let fs = p.sample_rate * 4.0;
            let total = band_power(&psd, fs, -fs / 2.0, fs / 2.0);
            let in_band = band_power(&psd, fs, f_lo, f_hi);
            Ok(10.0 * ((total - in_band).max(1e-20) / total).log10())
        };

        // EVM at baseband rate (the PA is memoryless, so EVM is rate
        // independent).
        let evm_after_pa = |backoff: f64| -> Result<f64, SimError> {
            let mut g = Graph::new();
            let src = g.add(SamplePlayback::new(frame.signal().clone()));
            let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(backoff));
            g.chain(&[src, pa])?;
            g.run()?;
            let out = g.output(pa).expect("ran").clone();
            Ok(evm_after_gain_correction(&p, &frame, &out, 4))
        };

        // Occupied bandwidth of the clean oversampled signal.
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::new(oversampled.clone()));
        let sa = g.add(SpectrumAnalyzer::new(512));
        g.chain(&[src, sa])?;
        g.run()?;
        let obw = g
            .block::<SpectrumAnalyzer>(sa)
            .expect("present")
            .occupied_bandwidth(0.99)
            .expect("ran");

        let oob8 = oob_after_pa(8.0)?;
        let oob2 = oob_after_pa(2.0)?;
        let evm8 = evm_after_pa(8.0)?;
        let evm2 = evm_after_pa(2.0)?;
        println!(
            "| {} | {:.3} | {:.1} | {:.1} | {:.1} | {:.1} |",
            id.key(),
            obw / 1e6,
            oob8,
            oob2,
            evm8,
            evm2,
        );
        assert!(evm2 > evm8, "{id}: harder PA drive must degrade EVM");
        assert!(
            oob2 > oob8,
            "{id}: harder PA drive must raise spectral regrowth"
        );
    }
    Ok(())
}

/// E3 — behavioral vs RT-level simulation time (Table 3): the paper's
/// "negligible influence" claim.
fn e3_simulation_time() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## E3 — Behavioral vs RT-level simulation time (Table 3)\n");
    println!("| symbols | behavioral TX | RT-level TX | RTL/beh | RF sim (tone) | RF sim (OFDM src) | src overhead |");
    println!("|---|---|---|---|---|---|---|");
    let rate = WlanRate::Mbps12;
    for &n_symbols in &[10usize, 50, 200] {
        let bits = n_symbols * rate.n_cbps() / 2 - 6; // rate 1/2, minus tail
        let payload = payload_bits(bits, 3);

        let mut beh = MotherModel::new(ieee80211a::params(rate))?;
        let t_beh = time_per_run(
            || {
                beh.transmit(&payload).expect("transmits");
            },
            3,
        );
        let rtl = Tx80211aRtl::new(rate);
        let t_rtl = time_per_run(
            || {
                rtl.transmit(&payload);
            },
            3,
        );
        let n_samples = 320 + n_symbols * 80;
        let rf_once = |use_ofdm: bool| -> f64 {
            time_per_run(
                || {
                    let mut g = Graph::new();
                    let src = if use_ofdm {
                        g.add(
                            OfdmSource::new(ieee80211a::params(rate), bits, 1)
                                .expect("valid preset"),
                        )
                    } else {
                        g.add(ToneSource::new(1e6, 20e6, n_samples))
                    };
                    let dac = g.add(Dac::new(10, 4.0));
                    let lo = g.add(LocalOscillator::new(0.0, 100.0, 3));
                    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
                    let sa = g.add(SpectrumAnalyzer::new(256));
                    g.chain(&[src, dac, lo, pa, sa]).expect("wires");
                    g.run().expect("runs");
                },
                3,
            )
        };
        let t_rf_tone = rf_once(false);
        let t_rf_ofdm = rf_once(true);
        println!(
            "| {} | {} | {} | {:.1}× | {} | {} | {:+.0}% |",
            n_symbols,
            fmt_secs(t_beh),
            fmt_secs(t_rtl),
            t_rtl / t_beh.max(1e-12),
            fmt_secs(t_rf_tone),
            fmt_secs(t_rf_ofdm),
            (t_rf_ofdm / t_rf_tone.max(1e-12) - 1.0) * 100.0,
        );
    }
    println!("\n(RTL kernel here is compiled Rust with one micro-op/cycle — a *lower bound* on");
    println!("real HDL-simulator cost; the paper's APLAC-vs-VHDL gap is far larger.)");

    // Batch vs chunked streaming scheduler on a streaming-capable chain
    // (OFDM source → PA → power meter, 80-sample chunks ≙ one symbol).
    // Streaming keeps per-edge memory at O(chunk) instead of O(frame).
    println!("\nBatch vs chunked streaming scheduler (80-sample chunks):\n");
    println!("| symbols | batch `run` | streaming `run_streaming` | stream/batch |");
    println!("|---|---|---|---|");
    for &n_symbols in &[10usize, 50, 200] {
        let bits = n_symbols * rate.n_cbps() / 2 - 6;
        let chain_once = |streaming: bool| -> f64 {
            time_per_run(
                || {
                    let mut g = Graph::new();
                    let src = g.add(
                        OfdmSource::new(ieee80211a::params(rate), bits, 1).expect("valid preset"),
                    );
                    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
                    let meter = g.add(PowerMeter::new());
                    g.chain(&[src, pa, meter]).expect("wires");
                    if streaming {
                        g.run_streaming(80).expect("runs");
                    } else {
                        g.run().expect("runs");
                    }
                },
                3,
            )
        };
        let t_batch = chain_once(false);
        let t_stream = chain_once(true);
        println!(
            "| {} | {} | {} | {:.2}× |",
            n_symbols,
            fmt_secs(t_batch),
            fmt_secs(t_stream),
            t_stream / t_batch.max(1e-12),
        );
    }
    Ok(())
}

/// E4 — design-effort proxy (Table 4): a standard is a parameter set; the
/// engine is shared.
fn e4_design_effort() {
    println!("\n## E4 — Reconfiguration vs redesign effort proxy (Table 4)\n");
    println!("| standard | preset size (debug bytes) | mechanisms used |");
    println!("|---|---|---|");
    let mechanisms = |p: &ofdm_core::params::OfdmParams| -> String {
        let mut m = Vec::new();
        if p.map.is_hermitian() {
            m.push("DMT");
        }
        if p.differential {
            m.push("diff");
        }
        if !p.pilots.is_none() {
            m.push("pilots");
        }
        if p.scrambler.is_some() {
            m.push("scram");
        }
        if p.rs_outer.is_some() {
            m.push("RS");
        }
        if p.conv_code.is_some() {
            m.push("CC");
        }
        if !matches!(p.interleaver, ofdm_core::interleave::InterleaverSpec::None) {
            m.push("ilv");
        }
        if !p.preamble.is_empty() {
            m.push("preamble");
        }
        m.join("+")
    };
    let mut total = 0usize;
    for id in StandardId::ALL {
        let p = default_params(id);
        let size = format!("{p:?}").len();
        total += size;
        println!("| {} | {} | {} |", id.key(), size, mechanisms(&p));
    }
    println!("\nTen presets total ≈ {total} debug-bytes of *configuration*, all sharing one");
    println!("engine — the Mother Model trade the paper describes: \"in the case of two or");
    println!("more different standards this approach is time saving\".");
}

/// E5 — behavioral ↔ RT-level functional equivalence vs datapath
/// wordlength (Table 5).
fn e5_equivalence() {
    println!("\n## E5 — Behavioral vs bit-true RTL equivalence (Table 5)\n");
    println!("| datapath format | max |Δ| | RMS error | correlation |");
    println!("|---|---|---|---|");
    let rate = WlanRate::Mbps12;
    let payload = payload_bits(960, 21);
    let mut beh = MotherModel::new(ieee80211a::params(rate)).expect("valid preset");
    let frame_b = beh.transmit(&payload).expect("transmits");
    for &(w, f) in &[(8u32, 5u32), (10, 7), (12, 9), (16, 12), (20, 16), (24, 20)] {
        let rtl = Tx80211aRtl::new(rate).with_format(FxFormat::new(w, f));
        let frame_r = rtl.transmit(&payload);
        let mut max_d = 0.0f64;
        let mut err2 = 0.0f64;
        let mut dot = 0.0f64;
        let mut pb = 0.0f64;
        let mut pr = 0.0f64;
        for (b, r) in frame_b.samples().iter().zip(&frame_r.samples) {
            let d = (*b - *r).abs();
            max_d = max_d.max(d);
            err2 += d * d;
            dot += (b.conj() * *r).re;
            pb += b.norm_sqr();
            pr += r.norm_sqr();
        }
        let rms = (err2 / frame_b.samples().len() as f64).sqrt();
        let corr = dot / (pb * pr).sqrt();
        println!("| Q{w}.{f} | {max_d:.2e} | {rms:.2e} | {corr:.6} |");
    }
}

/// E7 — end-to-end BER waterfall over the AWGN channel (Table 7): the
/// coding gain of the 802.11a chain, measured through the co-simulation.
fn e7_ber_waterfall() -> Result<(), Box<dyn std::error::Error>> {
    use ofdm_rx::receiver::ReferenceReceiver;

    println!("\n## E7 — BER vs SNR over AWGN, 802.11a QPSK (Table 7)\n");
    println!("| SNR (dB) | uncoded BER | coded (K=7 r=1/2) BER |");
    println!("|---|---|---|");

    let coded_params = ieee80211a::params(WlanRate::Mbps12);
    let mut uncoded_params = coded_params.clone();
    uncoded_params.conv_code = None;
    uncoded_params.interleaver = ofdm_core::interleave::InterleaverSpec::None;
    uncoded_params.name = "802.11a QPSK uncoded".into();

    let n_bits = 48_000;
    let sent = payload_bits(n_bits, 77);
    let ber_for = |params: &ofdm_core::params::OfdmParams, snr: f64, seed: u64| -> f64 {
        let mut tx = MotherModel::new(params.clone()).expect("valid");
        let frame = tx.transmit(&sent).expect("tx");
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::new(frame.signal().clone()));
        let ch = g.add(AwgnChannel::from_snr_db(snr, seed));
        g.chain(&[src, ch]).expect("wiring");
        g.run().expect("runs");
        let received = g.output(ch).expect("ran").clone();
        let mut rx = ReferenceReceiver::new(params.clone()).expect("valid");
        let got = rx.receive(&received, sent.len()).expect("decodes");
        sent.iter().zip(&got).filter(|(a, b)| a != b).count() as f64 / n_bits as f64
    };
    // The SNR points are independent scenarios; the seeds are functions of
    // the SNR alone, so the parallel sweep is bit-identical to the old
    // sequential loop.
    let snrs = [2.0f64, 4.0, 6.0, 8.0, 10.0];
    let (results, _) =
        SweepPlan::new(snrs.len()).run_fail_fast(|i| -> Result<(f64, f64), String> {
            let snr = snrs[i];
            let raw = ber_for(&uncoded_params, snr, 1000 + snr as u64);
            let coded = ber_for(&coded_params, snr, 2000 + snr as u64);
            Ok((raw, coded))
        })?;
    for (&snr, &(raw, coded)) in snrs.iter().zip(&results) {
        println!("| {snr:.0} | {raw:.2e} | {coded:.2e} |");
    }
    // The waterfall shape: monotone in SNR, and coding wins decisively at
    // moderate SNR.
    assert!(
        results.windows(2).all(|w| w[1].0 <= w[0].0 * 1.2),
        "uncoded BER must fall"
    );
    let (raw8, coded8) = results[3]; // 8 dB
    assert!(
        coded8 < raw8 / 20.0,
        "coding gain at 8 dB: {raw8:.2e} vs {coded8:.2e}"
    );
    Ok(())
}

/// A finite, positive ratio for the bench JSON: both terms are floored
/// away from zero so a zero-duration timing (coarse clock, trivial run)
/// can never emit NaN or infinity into the trajectory file.
fn finite_ratio(num: f64, den: f64) -> f64 {
    (num.max(1e-12) / den.max(1e-12)).clamp(1e-9, 1e9)
}

/// The structure-of-arrays payoff gate riding along in the trajectory
/// file: per standard, the batched split-component Rapp kernel (the same
/// PA the bench chain drives) timed against the retained per-sample polar
/// path on that standard's own waveform, tiled to a fixed working-set
/// size. `--check-bench` holds the speedups to the DESIGN §3.5 floors.
fn simd_speedup_snapshot() -> Result<Value, Box<dyn std::error::Error>> {
    use ofdm_dsp::Complex64;
    /// Working-set floor per standard — every measurement runs on at least
    /// this many samples so short-frame standards (802.11a) are not timed
    /// on cache-warm toy buffers while DVB-T runs a full 8k frame.
    const MIN_SAMPLES: usize = 1 << 15;
    const REPS: usize = 8;
    let pa = RappPa::new(1.0, 3.0).with_input_backoff_db(8.0);
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut log_sum = 0.0;
    for id in StandardId::ALL {
        let p = default_params(id);
        let bits = 2 * p.nominal_bits_per_symbol().max(100);
        let mut tx = MotherModel::new(p)?;
        let frame = tx.transmit(&payload_bits(bits, 5))?;
        let (frame_re, frame_im) = frame.signal().parts();
        let mut re: Vec<f64> = Vec::with_capacity(MIN_SAMPLES + frame_re.len());
        let mut im: Vec<f64> = Vec::with_capacity(MIN_SAMPLES + frame_im.len());
        while re.len() < MIN_SAMPLES {
            re.extend_from_slice(frame_re);
            im.extend_from_slice(frame_im);
        }
        let n = re.len();
        let samples: Vec<Complex64> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();

        // Both variants read one n-sample buffer and write one n-sample
        // result per run, so the comparison is pure compute.
        let mut scalar_out = samples.clone();
        let t_scalar = time_per_run(
            || {
                for (dst, &z) in scalar_out.iter_mut().zip(&samples) {
                    *dst = pa.distort_reference(z);
                }
                std::hint::black_box(&scalar_out);
            },
            REPS,
        );
        let mut batch_re = re.clone();
        let mut batch_im = im.clone();
        let t_batched = time_per_run(
            || {
                batch_re.copy_from_slice(&re);
                batch_im.copy_from_slice(&im);
                pa.apply_split(&mut batch_re, &mut batch_im);
                std::hint::black_box((&batch_re, &batch_im));
            },
            REPS,
        );
        let speedup = finite_ratio(t_scalar, t_batched);
        log_sum += speedup.ln();
        entries.push((
            id.key().to_string(),
            Value::Object(vec![
                ("samples".into(), n.into()),
                ("scalar_ns".into(), (t_scalar * 1e9).into()),
                ("batched_ns".into(), (t_batched * 1e9).into()),
                ("speedup".into(), speedup.into()),
            ]),
        ));
    }
    let geomean = (log_sum / StandardId::ALL.len() as f64).exp();
    Ok(Value::Object(vec![
        ("min_samples".into(), MIN_SAMPLES.into()),
        ("standards".into(), Value::Object(entries)),
        ("geomean".into(), geomean.into()),
    ]))
}

/// The streaming telemetry chain used for `--emit-bench`: OFDM source →
/// PA → power meter, the same shape E3 times.
fn bench_chain(params: &ofdm_core::params::OfdmParams, bits: usize) -> Graph {
    let mut g = Graph::new();
    let src = g.add(OfdmSource::new(params.clone(), bits, 1).expect("valid preset"));
    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
    let meter = g.add(PowerMeter::new());
    g.chain(&[src, pa, meter]).expect("wires");
    g
}

/// `--emit-bench FILE` — writes `BENCH_ofdm.json`: per-block nanoseconds,
/// throughput and transmitter stage split for every standard, plus the
/// behavioral-vs-RTL ratio (the paper's C3 claim) and the instrumentation
/// overhead ratio.
fn emit_bench_json(path: &str, n_symbols: usize) -> Result<(), Box<dyn std::error::Error>> {
    let n_symbols = n_symbols.max(1);
    const CHUNK: usize = 256;
    let mut standards: Vec<(String, Value)> = Vec::new();
    for id in StandardId::ALL {
        let p = default_params(id);
        let bits = n_symbols * p.nominal_bits_per_symbol().max(100);
        let report = bench_chain(&p, bits).run_streaming_instrumented(CHUNK)?;
        let per_block: Vec<(String, Value)> = report
            .blocks
            .iter()
            .map(|b| (b.name.clone(), Value::from(b.nanos)))
            .collect();

        // The stage split (pilot/map/IFFT/CP) comes straight from the
        // transmitter's own stream state, outside the graph.
        let mut tx = MotherModel::new(p.clone())?;
        let mut state = StreamState::new();
        state.set_stage_timing(true);
        let payload = payload_bits(bits, 1);
        tx.begin_stream(&payload, &mut state)?;
        let mut out = Vec::new();
        while tx.stream_into(&mut state, CHUNK, &mut out) > 0 {}
        let stages = state.stage_nanos();

        standards.push((
            id.key().to_string(),
            Value::Object(vec![
                ("total_ns".into(), report.total_nanos.into()),
                ("samples".into(), report.source_samples().into()),
                ("throughput_msps".into(), report.throughput_msps().into()),
                ("per_block_ns".into(), Value::Object(per_block)),
                (
                    "stages_ns".into(),
                    Value::Object(vec![
                        ("pilot".into(), stages.pilot.into()),
                        ("map".into(), stages.map.into()),
                        ("ifft".into(), stages.ifft.into()),
                        ("cp".into(), stages.cp.into()),
                    ]),
                ),
            ]),
        ));
    }

    // Behavioral vs RTL transmitter wall time (802.11a, as in E3).
    let rate = WlanRate::Mbps12;
    let wlan_bits = n_symbols.max(4) * rate.n_cbps() / 2 - 6;
    let payload = payload_bits(wlan_bits, 3);
    let mut beh = MotherModel::new(ieee80211a::params(rate))?;
    let t_beh = time_per_run(
        || {
            beh.transmit(&payload).expect("transmits");
        },
        3,
    );
    let rtl = Tx80211aRtl::new(rate);
    let t_rtl = time_per_run(
        || {
            rtl.transmit(&payload);
        },
        3,
    );

    // Instrumented vs uninstrumented streaming on the same chain.
    let wlan = ieee80211a::params(rate);
    let t_plain = time_per_run(
        || {
            bench_chain(&wlan, wlan_bits)
                .run_streaming(CHUNK)
                .expect("runs");
        },
        3,
    );
    let t_inst = time_per_run(
        || {
            bench_chain(&wlan, wlan_bits)
                .run_streaming_instrumented(CHUNK)
                .expect("runs");
        },
        3,
    );

    // Unified-engine guard: the legacy shim entrypoint vs an explicit
    // `ExecPlan` driving the same chain. The shim is a one-line delegate,
    // so anything outside timing noise (< 5%, enforced by `--check-bench`)
    // means the refactor grew a real cost. The bursts are interleaved and
    // each side keeps its best window, so slow frequency/load drift over
    // the measurement hits both entrypoints instead of biasing the ratio.
    // One prebuilt graph per entrypoint — graph/model construction is
    // allocation-heavy and jittery, and the gate times the scheduler loop,
    // not the constructors.
    let engine_plan = ExecPlan::streaming(CHUNK);
    let mut g_shim = bench_chain(&wlan, wlan_bits);
    let mut g_engine = bench_chain(&wlan, wlan_bits);
    let mut t_shim = f64::INFINITY;
    let mut t_engine = f64::INFINITY;
    for _ in 0..8 {
        let t = std::time::Instant::now();
        for _ in 0..8 {
            g_shim.run_streaming(CHUNK).expect("runs");
        }
        t_shim = t_shim.min(t.elapsed().as_secs_f64() / 8.0);
        let t = std::time::Instant::now();
        for _ in 0..8 {
            g_engine.execute(&engine_plan).expect("runs");
        }
        t_engine = t_engine.min(t.elapsed().as_secs_f64() / 8.0);
    }

    // Fault-injection sweep outcome counts (the graceful-degradation gate
    // rides along in the trajectory file).
    let (_, fault_sweep) = run_fault_sweep();
    let faults = fault_sweep.faults.expect("resilient sweep reports faults");

    let doc = Value::Object(vec![
        ("schema".into(), "bench-ofdm/v1".into()),
        ("symbols".into(), n_symbols.into()),
        (
            "behavioral_vs_rtl_ratio".into(),
            finite_ratio(t_rtl, t_beh).into(),
        ),
        (
            "instrumented_overhead_ratio".into(),
            finite_ratio(t_inst, t_plain).into(),
        ),
        ("standards".into(), Value::Object(standards)),
        (
            "exec_engine".into(),
            Value::Object(vec![
                ("shim_ns".into(), (t_shim * 1e9).into()),
                ("engine_ns".into(), (t_engine * 1e9).into()),
                ("ratio".into(), finite_ratio(t_engine, t_shim).into()),
            ]),
        ),
        ("fault_sweep".into(), faults.to_json_value()),
        ("supervision".into(), supervision_snapshot()?),
        ("simd_speedup".into(), simd_speedup_snapshot()?),
    ]);
    let simd_geomean = doc
        .get("simd_speedup")
        .and_then(|s| s.get("geomean"))
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    std::fs::write(path, format!("{doc}\n"))?;
    println!(
        "wrote {path}: {} standards, RTL/behavioral {:.1}x, instrumentation overhead {:.3}x, \
         engine/shim {:.3}x, fault survival {:.0}%, SoA kernel geomean {:.1}x",
        StandardId::ALL.len(),
        finite_ratio(t_rtl, t_beh),
        finite_ratio(t_inst, t_plain),
        finite_ratio(t_engine, t_shim),
        faults.survival_rate() * 100.0,
        simd_geomean,
    );
    Ok(())
}

/// The supervised-runtime gate riding along in the trajectory file: a
/// breaker-degraded streaming run (health, trips, bypasses), a tiny
/// watchdogged sweep with one hung scenario (deadline kills), and a
/// two-pass checkpointed sweep (resumed count).
fn supervision_snapshot() -> Result<Value, Box<dyn std::error::Error>> {
    // Breaker: an always-failing impairment trips on the first chunk and
    // the rest of the pass bypasses it.
    let mut g = Graph::new();
    let src = g.add(ToneSource::new(1.0e6, 20.0e6, 2048));
    let bad = g.add(
        FaultPlan::new()
            .with_error_rate(1.0)
            .wrap(0xB5, NanInjector::new(1.0, 5)),
    );
    let pa = g.add(SoftClipPa::new(1.0));
    g.chain(&[src, bad, pa])?;
    g.set_breaker_policy(Some(BreakerPolicy::new().with_threshold(1)));
    let run = g.run_streaming_instrumented(256)?;

    // Watchdog: one of four scenarios hangs and is killed at its budget.
    let supervisor = SweepSupervisor::new()
        .with_scenario_budget(Duration::from_millis(150))
        .with_poll_interval(Duration::from_millis(2));
    let (_, sweep) = SweepPlan::new(4)
        .threads(2)
        .with_supervisor(supervisor)
        .run(|i, _attempt, ctx| -> Result<f64, SimError> {
            if i == 3 {
                let mut g = Graph::new();
                let src = g.add(StalledSource::new(20.0e6, Duration::from_millis(2)));
                let pa = g.add(SoftClipPa::new(1.0));
                g.chain(&[src, pa])?;
                ctx.supervise(&mut g);
                g.run_streaming(64)?;
            }
            e10_scenario_power(0xBE, i)
        });
    let watchdog = sweep
        .supervision
        .expect("supervised sweep reports supervision");

    // Checkpoint: persist half a sweep, then resume and merge.
    const COUNT: usize = 6;
    let path = std::env::temp_dir().join(format!("rfsim-bench-ckpt-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "bench", COUNT);
    let plan = SweepPlan::new(COUNT).threads(2);
    let _ = plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| {
        if i >= COUNT / 2 {
            return Err(SimError::BlockFailure {
                block: "bench".into(),
                message: "interrupted".into(),
            });
        }
        e10_scenario_power(0xCB, i)
    });
    drop(ckpt);
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "bench", COUNT);
    let (_, resumed_sweep) =
        plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| e10_scenario_power(0xCB, i));
    let resumed = resumed_sweep
        .supervision
        .expect("checkpointed sweep reports supervision")
        .resumed;
    ckpt.discard()?;

    Ok(Value::Object(vec![
        ("health".into(), run.health.as_str().into()),
        ("breaker_trips".into(), run.breaker_trips.into()),
        (
            "bypassed_invocations".into(),
            run.bypassed_invocations.into(),
        ),
        ("deadline_kills".into(), watchdog.deadline_kills.into()),
        ("resumed".into(), resumed.into()),
    ]))
}

/// `--check-bench FILE` — parses an emitted `BENCH_ofdm.json` and fails
/// (nonzero exit) unless every required key is present and well-typed for
/// all ten standards. This is the CI gate on the telemetry pipeline.
fn check_bench_json(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = serde::json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let fail = |msg: String| -> Box<dyn std::error::Error> { format!("{path}: {msg}").into() };

    if doc.get("schema").and_then(Value::as_str) != Some("bench-ofdm/v1") {
        return Err(fail(
            "missing or wrong `schema` (want \"bench-ofdm/v1\")".into(),
        ));
    }
    for key in [
        "symbols",
        "behavioral_vs_rtl_ratio",
        "instrumented_overhead_ratio",
    ] {
        let v = doc
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| fail(format!("missing numeric `{key}`")))?;
        if !v.is_finite() || v <= 0.0 {
            return Err(fail(format!(
                "`{key}` must be finite and positive, got {v}"
            )));
        }
    }
    let standards = doc
        .get("standards")
        .ok_or_else(|| fail("missing `standards`".into()))?;
    // The shim serializes non-finite f64 as `null` (caught above as a
    // missing numeric), but a hand-edited or foreign file can still carry
    // garbage — reject any non-finite number explicitly.
    let finite = |v: Option<f64>, what: String| -> Result<f64, Box<dyn std::error::Error>> {
        let v = v.ok_or_else(|| fail(format!("missing numeric {what}")))?;
        if !v.is_finite() {
            return Err(fail(format!("{what} is not finite: {v}")));
        }
        Ok(v)
    };
    for id in StandardId::ALL {
        let key = id.key();
        let s = standards
            .get(key)
            .ok_or_else(|| fail(format!("missing standard `{key}`")))?;
        for field in ["total_ns", "samples", "throughput_msps"] {
            finite(
                s.get(field).and_then(Value::as_f64),
                format!("`{key}`.`{field}`"),
            )?;
        }
        let per_block = s
            .get("per_block_ns")
            .and_then(Value::as_object)
            .ok_or_else(|| fail(format!("`{key}` missing object `per_block_ns`")))?;
        if per_block.is_empty() {
            return Err(fail(format!("`{key}`: `per_block_ns` is empty")));
        }
        for (block, ns) in per_block {
            finite(ns.as_f64(), format!("`{key}` block `{block}` ns"))?;
        }
        let stages = s
            .get("stages_ns")
            .ok_or_else(|| fail(format!("`{key}` missing `stages_ns`")))?;
        for stage in ["pilot", "map", "ifft", "cp"] {
            finite(
                stages.get(stage).and_then(Value::as_f64),
                format!("`{key}` stage `{stage}`"),
            )?;
        }
    }
    // The fault sweep is optional (older files predate it) but must be
    // sound when present.
    if let Some(fs) = doc.get("fault_sweep") {
        for field in [
            "succeeded",
            "retried",
            "faulted",
            "panics_caught",
            "errors_caught",
        ] {
            finite(
                fs.get(field).and_then(Value::as_f64),
                format!("`fault_sweep`.`{field}`"),
            )?;
        }
        let rate = finite(
            fs.get("survival_rate").and_then(Value::as_f64),
            "`fault_sweep`.`survival_rate`".into(),
        )?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(fail(format!(
                "`fault_sweep`.`survival_rate` must be in [0, 1], got {rate}"
            )));
        }
    }
    // The unified-engine guard: optional in files predating the ExecPlan
    // refactor, but when present the plan-driven engine must sit within
    // timing noise (< 5%) of the legacy shim entrypoint it replaced.
    if let Some(engine) = doc.get("exec_engine") {
        for field in ["shim_ns", "engine_ns"] {
            let v = finite(
                engine.get(field).and_then(Value::as_f64),
                format!("`exec_engine`.`{field}`"),
            )?;
            if v <= 0.0 {
                return Err(fail(format!(
                    "`exec_engine`.`{field}` must be positive, got {v}"
                )));
            }
        }
        let ratio = finite(
            engine.get("ratio").and_then(Value::as_f64),
            "`exec_engine`.`ratio`".into(),
        )?;
        if !(0.95..=1.05).contains(&ratio) {
            return Err(fail(format!(
                "`exec_engine`.`ratio` must be within 5% of 1.0 (engine within \
                 noise of the shim), got {ratio}"
            )));
        }
    }

    // The SoA payoff gate: optional in files predating the split-layout
    // refactor; when present, every standard's batched kernel must at
    // minimum not regress the scalar path, the two headline standards
    // (802.11a and DVB-T) must clear 5x, and the family geomean 3x.
    if let Some(simd) = doc.get("simd_speedup") {
        let entries = simd
            .get("standards")
            .and_then(Value::as_object)
            .ok_or_else(|| fail("`simd_speedup` missing object `standards`".into()))?;
        if entries.len() != StandardId::ALL.len() {
            return Err(fail(format!(
                "`simd_speedup`.`standards` has {} entries, want {}",
                entries.len(),
                StandardId::ALL.len()
            )));
        }
        for id in StandardId::ALL {
            let key = id.key();
            let s = simd
                .get("standards")
                .and_then(|e| e.get(key))
                .ok_or_else(|| fail(format!("`simd_speedup` missing standard `{key}`")))?;
            for field in ["samples", "scalar_ns", "batched_ns"] {
                finite(
                    s.get(field).and_then(Value::as_f64),
                    format!("`simd_speedup`.`{key}`.`{field}`"),
                )?;
            }
            let speedup = finite(
                s.get("speedup").and_then(Value::as_f64),
                format!("`simd_speedup`.`{key}`.`speedup`"),
            )?;
            if speedup < 1.0 {
                return Err(fail(format!(
                    "`simd_speedup`.`{key}`: batched kernel slower than the \
                     scalar path ({speedup:.2}x, floor 1x)"
                )));
            }
            let floor = match id {
                StandardId::Ieee80211a | StandardId::DvbT => 5.0,
                _ => 1.0,
            };
            if speedup < floor {
                return Err(fail(format!(
                    "`simd_speedup`.`{key}`: {speedup:.2}x below the {floor}x floor"
                )));
            }
        }
        let geomean = finite(
            simd.get("geomean").and_then(Value::as_f64),
            "`simd_speedup`.`geomean`".into(),
        )?;
        if geomean < 3.0 {
            return Err(fail(format!(
                "`simd_speedup`.`geomean` {geomean:.2}x below the 3x family floor"
            )));
        }
    }

    // Same deal for the supervised-runtime gate: optional in older files,
    // validated when present.
    if let Some(sup) = doc.get("supervision") {
        let health = sup
            .get("health")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("`supervision` missing string `health`".into()))?;
        if !["healthy", "degraded", "failed"].contains(&health) {
            return Err(fail(format!("`supervision`.`health` is `{health}`")));
        }
        for field in [
            "breaker_trips",
            "bypassed_invocations",
            "deadline_kills",
            "resumed",
        ] {
            let v = finite(
                sup.get(field).and_then(Value::as_f64),
                format!("`supervision`.`{field}`"),
            )?;
            if v < 0.0 {
                return Err(fail(format!(
                    "`supervision`.`{field}` must be non-negative, got {v}"
                )));
            }
        }
    }
    // Waterfall curves ride along when a sibling `waterfall.json` exists
    // (the CI smoke emits one next to the bench file): finite values,
    // BER within [0, 1], and monotone-descending curves.
    let sibling = std::path::Path::new(path).with_file_name("waterfall.json");
    if sibling.exists() {
        check_waterfall_json(&sibling.to_string_lossy())?;
    }
    println!("{path}: ok ({} standards)", StandardId::ALL.len());
    Ok(())
}

/// Validates a `waterfall/v1` document: shape, finite values, BER within
/// `[0, 1]` and consistent with its `errors/bits` tally, and per-standard
/// curves that descend with SNR (small slack per step for counting noise,
/// none for the endpoints).
fn check_waterfall_json(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = serde::json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let fail = |msg: String| -> Box<dyn std::error::Error> { format!("{path}: {msg}").into() };

    if doc.get("schema").and_then(Value::as_str) != Some("waterfall/v1") {
        return Err(fail(
            "missing or wrong `schema` (want \"waterfall/v1\")".into(),
        ));
    }
    let snr = doc
        .get("snr_db")
        .and_then(Value::as_array)
        .ok_or_else(|| fail("missing array `snr_db`".into()))?;
    if snr.is_empty() {
        return Err(fail("`snr_db` is empty".into()));
    }
    let mut prev = f64::NEG_INFINITY;
    for (i, v) in snr.iter().enumerate() {
        let db = v
            .as_f64()
            .filter(|d| d.is_finite())
            .ok_or_else(|| fail(format!("`snr_db[{i}]` is not a finite number")))?;
        if db <= prev {
            return Err(fail(format!("`snr_db` must increase at index {i}")));
        }
        prev = db;
    }
    let standards = doc
        .get("standards")
        .and_then(Value::as_object)
        .ok_or_else(|| fail("missing object `standards`".into()))?;
    if standards.is_empty() {
        return Err(fail("`standards` is empty".into()));
    }
    for (key, curve) in standards {
        let series = |field: &str| -> Result<Vec<f64>, Box<dyn std::error::Error>> {
            let arr = curve
                .get(field)
                .and_then(Value::as_array)
                .ok_or_else(|| fail(format!("`{key}` missing array `{field}`")))?;
            if arr.len() != snr.len() {
                return Err(fail(format!(
                    "`{key}`.`{field}` has {} points, want {}",
                    arr.len(),
                    snr.len()
                )));
            }
            arr.iter()
                .enumerate()
                .map(|(i, v)| {
                    v.as_f64()
                        .filter(|x| x.is_finite())
                        .ok_or_else(|| fail(format!("`{key}`.`{field}[{i}]` is not finite")))
                })
                .collect()
        };
        let ber = series("ber")?;
        let errors = series("errors")?;
        let bits = series("bits")?;
        for i in 0..snr.len() {
            if !(0.0..=1.0).contains(&ber[i]) {
                return Err(fail(format!(
                    "`{key}`.`ber[{i}]` outside [0, 1]: {}",
                    ber[i]
                )));
            }
            if bits[i] <= 0.0 || errors[i] < 0.0 || errors[i] > bits[i] {
                return Err(fail(format!(
                    "`{key}` point {i}: bad tally {}/{}",
                    errors[i], bits[i]
                )));
            }
            if (ber[i] - errors[i] / bits[i]).abs() > 1e-9 {
                return Err(fail(format!(
                    "`{key}`.`ber[{i}]` inconsistent with errors/bits"
                )));
            }
        }
        for (i, w) in ber.windows(2).enumerate() {
            if w[1] > w[0] + (0.05 * w[0]).max(1e-3) {
                return Err(fail(format!(
                    "`{key}`: BER rises from {:.3e} to {:.3e} at SNR index {}",
                    w[0],
                    w[1],
                    i + 1
                )));
            }
        }
        let (first, last) = (ber[0], ber[snr.len() - 1]);
        if last >= first && first > 0.0 {
            return Err(fail(format!(
                "`{key}`: waterfall does not descend ({first:.3e} → {last:.3e})"
            )));
        }
    }
    println!("{path}: ok ({} curves)", standards.len());
    Ok(())
}

/// E6 — the RF-design question the co-simulation answers (Table 6):
/// 64-QAM 802.11a EVM vs PA back-off and vs LO phase noise.
fn e6_impairments() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n## E6 — Impairment studies via co-simulation (Table 6)\n");
    let p = ieee80211a::params(WlanRate::Mbps54);
    let frame = transmit_frame(&p, 12_000, 9);

    println!("EVM vs PA input back-off (Rapp p=3):\n");
    println!("| IBO (dB) | EVM (dB) | 64-QAM limit −25 dB |");
    println!("|---|---|---|");
    let ibos = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
    let (evms, _) = SweepPlan::new(ibos.len()).run_fail_fast(|i| -> Result<f64, String> {
        let mut g = Graph::new();
        let src = g.add(SamplePlayback::new(frame.signal().clone()));
        let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(ibos[i]));
        g.chain(&[src, pa]).map_err(|e| e.to_string())?;
        g.run().map_err(|e| e.to_string())?;
        let out = g.output(pa).expect("ran");
        Ok(evm_after_gain_correction(&p, &frame, out, 6))
    })?;
    for (&ibo, &evm) in ibos.iter().zip(&evms) {
        println!(
            "| {ibo:.0} | {evm:.1} | {} |",
            if evm < -25.0 { "pass" } else { "FAIL" }
        );
    }
    // More back-off → monotonically better EVM, by a large margin overall.
    assert!(
        evms.windows(2).all(|w| w[1] < w[0] + 0.2),
        "EVM must improve with back-off"
    );
    assert!(
        evms.last().expect("nonempty") < &(evms[0] - 10.0),
        "12 dB of back-off must buy well over 10 dB of EVM"
    );

    println!("\nEVM vs LO phase-noise linewidth:\n");
    println!("| linewidth (Hz) | EVM (dB) |");
    println!("|---|---|");
    let linewidths = [0.0, 10.0, 100.0, 1_000.0, 10_000.0];
    let (lo_evms, _) =
        SweepPlan::new(linewidths.len()).run_fail_fast(|i| -> Result<f64, String> {
            let mut g = Graph::new();
            let src = g.add(SamplePlayback::new(frame.signal().clone()));
            let lo = g.add(LocalOscillator::new(0.0, linewidths[i], 13));
            g.chain(&[src, lo]).map_err(|e| e.to_string())?;
            g.run().map_err(|e| e.to_string())?;
            let out = g.output(lo).expect("ran");
            Ok(evm_after_gain_correction(&p, &frame, out, 6))
        })?;
    for (&lw, &evm) in linewidths.iter().zip(&lo_evms) {
        println!("| {lw:.0} | {evm:.1} |");
    }
    Ok(())
}

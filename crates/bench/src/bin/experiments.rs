//! The experiment harness: runs every EXPERIMENTS.md table from a
//! declarative spec under `examples/lab/`.
//!
//! Run all experiments (release build strongly recommended):
//!
//! ```text
//! cargo run -p ofdm-bench --release --bin experiments
//! ```
//!
//! or a subset by short name: `… --bin experiments -- e1 e3 e6` (a short
//! name can map to several specs — `e11` runs both the AWGN and the
//! Rayleigh grid). Arbitrary spec files run with `--spec FILE`; the spec
//! directory itself moves with `--lab-dir DIR` (default: `examples/lab`
//! next to the workspace). `--list` prints the name → spec table.
//!
//! Lab outputs: `--lab-out FILE` writes the byte-stable `lab/v1` JSON of
//! the (single) run, `--lab-checkpoint FILE` resumes interrupted runs,
//! and `--check-lab FILE` validates an emitted document plus its verdict
//! (the CI gate).
//!
//! Machine-readable telemetry (the C3 claim, decomposed per block and per
//! transmitter stage):
//!
//! ```text
//! … --bin experiments -- --emit-bench BENCH_ofdm.json [--bench-symbols N]
//! … --bin experiments -- --check-bench BENCH_ofdm.json
//! ```
//!
//! Fault-injection smoke sweep (E9 alone): `… --bin experiments -- --faults`.
//!
//! Supervised-runtime smoke sweep (E10 alone): `… --bin experiments -- --supervise`.
//!
//! BER-vs-SNR waterfall smoke (fixed seed, machine-readable output):
//!
//! ```text
//! … --bin experiments -- --waterfall waterfall.json
//! ```

use ofdm_bench::lab::workloads::{e10_scenario_power, run_fault_sweep};
use ofdm_bench::lab::{report, ExperimentSpec, LabOptions};
use ofdm_bench::waterfall::{run_waterfall, waterfall_json, ChannelProfile, WaterfallSpec};
use ofdm_bench::{gates, payload_bits, time_per_run};
use ofdm_core::{MotherModel, StreamState};
use ofdm_rtl::Tx80211aRtl;
use ofdm_standards::ieee80211a::{self, WlanRate};
use ofdm_standards::{default_params, StandardId};
use rfsim::prelude::*;
use serde::json::Value;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Short experiment name → spec files under the lab directory. One name
/// can fan out to several specs (the legacy experiment had several
/// independent parts).
const EXPERIMENTS: [(&str, &[&str]); 13] = [
    ("e1", &["e1.json"]),
    ("e2", &["e2.json"]),
    ("e3", &["e3.json"]),
    ("e4", &["e4.json"]),
    ("e5", &["e5.json"]),
    ("e6", &["e6_pa.json", "e6_lo.json"]),
    ("e7", &["e7.json"]),
    ("e8", &["e8.json"]),
    ("e9", &["e9_faults.json", "e9_dropper.json"]),
    (
        "e10",
        &[
            "e10_watchdog.json",
            "e10_breaker.json",
            "e10_checkpoint.json",
        ],
    ),
    ("e11", &["e11_awgn.json", "e11_rayleigh.json"]),
    ("e12", &["e12.json"]),
    ("e13", &["e13.json"]),
];

fn usage() -> String {
    let names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
    format!(
        "experiments: {}; flags: --spec FILE, --lab-dir DIR, --lab-out FILE, \
         --lab-checkpoint FILE, --check-lab FILE, --list, --emit-bench FILE, \
         --check-bench FILE, --bench-symbols N, --waterfall FILE, --faults, --supervise",
        names.join(", ")
    )
}

/// Locates the spec directory: an explicit `--lab-dir`, else
/// `examples/lab` under the current directory, else the copy that ships
/// next to this crate's workspace (so `cargo run` works from anywhere
/// inside the repo).
fn lab_dir(explicit: Option<&str>) -> PathBuf {
    if let Some(dir) = explicit {
        return PathBuf::from(dir);
    }
    let cwd = PathBuf::from("examples/lab");
    if cwd.is_dir() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/lab")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut emit_bench: Option<String> = None;
    let mut check_bench: Option<String> = None;
    let mut check_lab: Option<String> = None;
    let mut waterfall_out: Option<String> = None;
    let mut lab_out: Option<String> = None;
    let mut lab_ckpt: Option<String> = None;
    let mut lab_dir_arg: Option<String> = None;
    let mut bench_symbols = 50usize;
    let mut list = false;
    let mut names: Vec<String> = Vec::new();
    let mut spec_files: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--emit-bench" => {
                emit_bench = Some(it.next().ok_or("--emit-bench needs a file path")?);
            }
            "--check-bench" => {
                check_bench = Some(it.next().ok_or("--check-bench needs a file path")?);
            }
            "--check-lab" => {
                check_lab = Some(it.next().ok_or("--check-lab needs a file path")?);
            }
            "--waterfall" => {
                waterfall_out = Some(it.next().ok_or("--waterfall needs a file path")?);
            }
            "--spec" => {
                spec_files.push(PathBuf::from(it.next().ok_or("--spec needs a file path")?));
            }
            "--lab-dir" => {
                lab_dir_arg = Some(it.next().ok_or("--lab-dir needs a directory")?);
            }
            "--lab-out" => {
                lab_out = Some(it.next().ok_or("--lab-out needs a file path")?);
            }
            "--lab-checkpoint" => {
                lab_ckpt = Some(it.next().ok_or("--lab-checkpoint needs a file path")?);
            }
            "--bench-symbols" => {
                bench_symbols = it
                    .next()
                    .ok_or("--bench-symbols needs a count")?
                    .parse()
                    .map_err(|e| format!("--bench-symbols: {e}"))?;
            }
            "--list" => list = true,
            // The fault smoke sweep is experiment E9 under a flag name.
            "--faults" => names.push("e9".into()),
            // The supervised-runtime smoke sweep is E10 under a flag name.
            "--supervise" => names.push("e10".into()),
            name if EXPERIMENTS.iter().any(|(n, _)| *n == name) => names.push(arg),
            bad => {
                eprintln!("error: unknown argument `{bad}`; {}", usage());
                std::process::exit(2);
            }
        }
    }
    let dir = lab_dir(lab_dir_arg.as_deref());
    if list {
        for (name, specs) in EXPERIMENTS {
            let paths: Vec<String> = specs
                .iter()
                .map(|s| dir.join(s).display().to_string())
                .collect();
            println!("{name}: {}", paths.join(", "));
        }
        return Ok(());
    }
    if let Some(path) = &emit_bench {
        emit_bench_json(path, bench_symbols)?;
    }
    if let Some(path) = &waterfall_out {
        emit_waterfall_json(path)?;
    }
    if let Some(path) = &check_bench {
        for line in gates::check_bench_json(path)? {
            println!("{line}");
        }
    }
    if let Some(path) = &check_lab {
        for line in gates::check_lab_json(path)? {
            println!("{line}");
        }
    }
    let had_side_job = emit_bench.is_some()
        || check_bench.is_some()
        || check_lab.is_some()
        || waterfall_out.is_some();

    // Resolve short names against the lab directory; `--spec` paths ride
    // along as-is. No selection at all means the full E1–E13 suite —
    // unless a side job above was the whole request.
    for name in &names {
        let specs = EXPERIMENTS
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .ok_or("unreachable: name was validated")?;
        spec_files.extend(specs.iter().map(|s| dir.join(s)));
    }
    if spec_files.is_empty() && !had_side_job {
        for (_, specs) in EXPERIMENTS {
            spec_files.extend(specs.iter().map(|s| dir.join(s)));
        }
    }
    if spec_files.is_empty() {
        return Ok(());
    }
    if lab_out.is_some() && spec_files.len() > 1 {
        eprintln!(
            "error: --lab-out needs exactly one spec (got {})",
            spec_files.len()
        );
        std::process::exit(2);
    }

    let options = LabOptions {
        threads: None,
        checkpoint: lab_ckpt.as_ref().map(PathBuf::from),
    };
    let mut failed = false;
    for path in &spec_files {
        let spec = ExperimentSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let run = ofdm_bench::lab::run_spec(&spec, &options)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!("{}", report::render(&run));
        if let Some(out) = &lab_out {
            std::fs::write(out, format!("{}\n", report::lab_json(&run)))?;
            println!("wrote {out}");
        }
        if !run.verdict {
            failed = true;
        }
    }
    if failed {
        return Err("at least one lab assertion failed".into());
    }
    Ok(())
}

/// The fixed-seed waterfall smoke grid behind `--waterfall`: two
/// standards × four SNR points, small enough for CI, deterministic
/// enough that the emitted `waterfall.json` is byte-stable across runs
/// and machines (BER tallies carry no timing).
fn waterfall_smoke_spec() -> WaterfallSpec {
    WaterfallSpec {
        standards: vec![StandardId::Ieee80211a, StandardId::Dab],
        snr_db: vec![0.0, 6.0, 12.0, 18.0],
        realizations: 3,
        payload_bits: 2000,
        base_seed: 0xE11,
        profile: ChannelProfile::Awgn,
        threads: 0,
    }
}

/// `--waterfall FILE` — runs the fixed-seed smoke grid through the
/// checkpointed sweep path and writes the `waterfall/v1` document.
fn emit_waterfall_json(path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let spec = waterfall_smoke_spec();
    let ckpt = std::path::Path::new(path).with_extension("ckpt.json");
    let report = run_waterfall(&spec, Some(&ckpt))?;
    let doc = waterfall_json(&spec, &report);
    std::fs::write(path, format!("{doc}\n"))?;
    println!(
        "wrote {path}: {} standards x {} SNR points x {} realizations ({} resumed)",
        spec.standards.len(),
        spec.snr_db.len(),
        spec.realizations,
        report.resumed,
    );
    Ok(())
}

fn finite_ratio(num: f64, den: f64) -> f64 {
    (num.max(1e-12) / den.max(1e-12)).clamp(1e-9, 1e9)
}

/// The structure-of-arrays payoff gate riding along in the trajectory
/// file: per standard, the batched split-component Rapp kernel (the same
/// PA the bench chain drives) timed against the retained per-sample polar
/// path on that standard's own waveform, tiled to a fixed working-set
/// size. `--check-bench` holds the speedups to the DESIGN §3.5 floors.
fn simd_speedup_snapshot() -> Result<Value, Box<dyn std::error::Error>> {
    use ofdm_dsp::Complex64;
    /// Working-set floor per standard — every measurement runs on at least
    /// this many samples so short-frame standards (802.11a) are not timed
    /// on cache-warm toy buffers while DVB-T runs a full 8k frame.
    const MIN_SAMPLES: usize = 1 << 15;
    const REPS: usize = 8;
    let pa = RappPa::new(1.0, 3.0).with_input_backoff_db(8.0);
    let mut entries: Vec<(String, Value)> = Vec::new();
    let mut log_sum = 0.0;
    for id in StandardId::ALL {
        let p = default_params(id);
        let bits = 2 * p.nominal_bits_per_symbol().max(100);
        let mut tx = MotherModel::new(p)?;
        let frame = tx.transmit(&payload_bits(bits, 5))?;
        let (frame_re, frame_im) = frame.signal().parts();
        let mut re: Vec<f64> = Vec::with_capacity(MIN_SAMPLES + frame_re.len());
        let mut im: Vec<f64> = Vec::with_capacity(MIN_SAMPLES + frame_im.len());
        while re.len() < MIN_SAMPLES {
            re.extend_from_slice(frame_re);
            im.extend_from_slice(frame_im);
        }
        let n = re.len();
        let samples: Vec<Complex64> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex64::new(r, i))
            .collect();

        // Both variants read one n-sample buffer and write one n-sample
        // result per run, so the comparison is pure compute.
        let mut scalar_out = samples.clone();
        let t_scalar = time_per_run(
            || {
                for (dst, &z) in scalar_out.iter_mut().zip(&samples) {
                    *dst = pa.distort_reference(z);
                }
                std::hint::black_box(&scalar_out);
            },
            REPS,
        );
        let mut batch_re = re.clone();
        let mut batch_im = im.clone();
        let t_batched = time_per_run(
            || {
                batch_re.copy_from_slice(&re);
                batch_im.copy_from_slice(&im);
                pa.apply_split(&mut batch_re, &mut batch_im);
                std::hint::black_box((&batch_re, &batch_im));
            },
            REPS,
        );
        let speedup = finite_ratio(t_scalar, t_batched);
        log_sum += speedup.ln();
        entries.push((
            id.key().to_string(),
            Value::Object(vec![
                ("samples".into(), n.into()),
                ("scalar_ns".into(), (t_scalar * 1e9).into()),
                ("batched_ns".into(), (t_batched * 1e9).into()),
                ("speedup".into(), speedup.into()),
            ]),
        ));
    }
    let geomean = (log_sum / StandardId::ALL.len() as f64).exp();
    Ok(Value::Object(vec![
        ("min_samples".into(), MIN_SAMPLES.into()),
        ("standards".into(), Value::Object(entries)),
        ("geomean".into(), geomean.into()),
    ]))
}

/// The streaming telemetry chain used for `--emit-bench`: OFDM source →
/// PA → power meter, the same shape E3 times.
fn bench_chain(params: &ofdm_core::params::OfdmParams, bits: usize) -> Graph {
    let mut g = Graph::new();
    let src =
        g.add(ofdm_core::source::OfdmSource::new(params.clone(), bits, 1).expect("valid preset"));
    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
    let meter = g.add(PowerMeter::new());
    g.chain(&[src, pa, meter]).expect("wires");
    g
}

/// `--emit-bench FILE` — writes `BENCH_ofdm.json`: per-block nanoseconds,
/// throughput and transmitter stage split for every standard, plus the
/// behavioral-vs-RTL ratio (the paper's C3 claim) and the instrumentation
/// overhead ratio.
fn emit_bench_json(path: &str, n_symbols: usize) -> Result<(), Box<dyn std::error::Error>> {
    let n_symbols = n_symbols.max(1);
    const CHUNK: usize = 256;
    let mut standards: Vec<(String, Value)> = Vec::new();
    for id in StandardId::ALL {
        let p = default_params(id);
        let bits = n_symbols * p.nominal_bits_per_symbol().max(100);
        let report = bench_chain(&p, bits).run_streaming_instrumented(CHUNK)?;
        let per_block: Vec<(String, Value)> = report
            .blocks
            .iter()
            .map(|b| (b.name.clone(), Value::from(b.nanos)))
            .collect();

        // The stage split (pilot/map/IFFT/CP) comes straight from the
        // transmitter's own stream state, outside the graph.
        let mut tx = MotherModel::new(p.clone())?;
        let mut state = StreamState::new();
        state.set_stage_timing(true);
        let payload = payload_bits(bits, 1);
        tx.begin_stream(&payload, &mut state)?;
        let mut out = Vec::new();
        while tx.stream_into(&mut state, CHUNK, &mut out) > 0 {}
        let stages = state.stage_nanos();

        standards.push((
            id.key().to_string(),
            Value::Object(vec![
                ("total_ns".into(), report.total_nanos.into()),
                ("samples".into(), report.source_samples().into()),
                ("throughput_msps".into(), report.throughput_msps().into()),
                ("per_block_ns".into(), Value::Object(per_block)),
                (
                    "stages_ns".into(),
                    Value::Object(vec![
                        ("pilot".into(), stages.pilot.into()),
                        ("map".into(), stages.map.into()),
                        ("ifft".into(), stages.ifft.into()),
                        ("cp".into(), stages.cp.into()),
                    ]),
                ),
            ]),
        ));
    }

    // Behavioral vs RTL transmitter wall time (802.11a, as in E3).
    let rate = WlanRate::Mbps12;
    let wlan_bits = n_symbols.max(4) * rate.n_cbps() / 2 - 6;
    let payload = payload_bits(wlan_bits, 3);
    let mut beh = MotherModel::new(ieee80211a::params(rate))?;
    let t_beh = time_per_run(
        || {
            beh.transmit(&payload).expect("transmits");
        },
        3,
    );
    let rtl = Tx80211aRtl::new(rate);
    let t_rtl = time_per_run(
        || {
            rtl.transmit(&payload);
        },
        3,
    );

    // Instrumented vs uninstrumented streaming on the same chain.
    let wlan = ieee80211a::params(rate);
    let t_plain = time_per_run(
        || {
            bench_chain(&wlan, wlan_bits)
                .run_streaming(CHUNK)
                .expect("runs");
        },
        3,
    );
    let t_inst = time_per_run(
        || {
            bench_chain(&wlan, wlan_bits)
                .run_streaming_instrumented(CHUNK)
                .expect("runs");
        },
        3,
    );

    // Unified-engine guard: the legacy shim entrypoint vs an explicit
    // `ExecPlan` driving the same chain. The shim is a one-line delegate,
    // so anything outside timing noise (< 5%, enforced by `--check-bench`)
    // means the refactor grew a real cost. The bursts are interleaved and
    // each side keeps its best window, so slow frequency/load drift over
    // the measurement hits both entrypoints instead of biasing the ratio.
    // One prebuilt graph per entrypoint — graph/model construction is
    // allocation-heavy and jittery, and the gate times the scheduler loop,
    // not the constructors.
    let engine_plan = ExecPlan::streaming(CHUNK);
    let mut g_shim = bench_chain(&wlan, wlan_bits);
    let mut g_engine = bench_chain(&wlan, wlan_bits);
    let mut t_shim = f64::INFINITY;
    let mut t_engine = f64::INFINITY;
    for _ in 0..8 {
        let t = std::time::Instant::now();
        for _ in 0..8 {
            g_shim.run_streaming(CHUNK).expect("runs");
        }
        t_shim = t_shim.min(t.elapsed().as_secs_f64() / 8.0);
        let t = std::time::Instant::now();
        for _ in 0..8 {
            g_engine.execute(&engine_plan).expect("runs");
        }
        t_engine = t_engine.min(t.elapsed().as_secs_f64() / 8.0);
    }

    // Fault-injection sweep outcome counts (the graceful-degradation gate
    // rides along in the trajectory file).
    let (_, fault_sweep) = run_fault_sweep();
    let faults = fault_sweep.faults.expect("resilient sweep reports faults");

    let doc = Value::Object(vec![
        ("schema".into(), "bench-ofdm/v1".into()),
        ("symbols".into(), n_symbols.into()),
        (
            "behavioral_vs_rtl_ratio".into(),
            finite_ratio(t_rtl, t_beh).into(),
        ),
        (
            "instrumented_overhead_ratio".into(),
            finite_ratio(t_inst, t_plain).into(),
        ),
        ("standards".into(), Value::Object(standards)),
        (
            "exec_engine".into(),
            Value::Object(vec![
                ("shim_ns".into(), (t_shim * 1e9).into()),
                ("engine_ns".into(), (t_engine * 1e9).into()),
                ("ratio".into(), finite_ratio(t_engine, t_shim).into()),
            ]),
        ),
        ("fault_sweep".into(), faults.to_json_value()),
        ("supervision".into(), supervision_snapshot()?),
        ("simd_speedup".into(), simd_speedup_snapshot()?),
    ]);
    let simd_geomean = doc
        .get("simd_speedup")
        .and_then(|s| s.get("geomean"))
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    std::fs::write(path, format!("{doc}\n"))?;
    println!(
        "wrote {path}: {} standards, RTL/behavioral {:.1}x, instrumentation overhead {:.3}x, \
         engine/shim {:.3}x, fault survival {:.0}%, SoA kernel geomean {:.1}x",
        StandardId::ALL.len(),
        finite_ratio(t_rtl, t_beh),
        finite_ratio(t_inst, t_plain),
        finite_ratio(t_engine, t_shim),
        faults.survival_rate() * 100.0,
        simd_geomean,
    );
    Ok(())
}

/// The supervised-runtime gate riding along in the trajectory file: a
/// breaker-degraded streaming run (health, trips, bypasses), a tiny
/// watchdogged sweep with one hung scenario (deadline kills), and a
/// two-pass checkpointed sweep (resumed count).
fn supervision_snapshot() -> Result<Value, Box<dyn std::error::Error>> {
    // Breaker: an always-failing impairment trips on the first chunk and
    // the rest of the pass bypasses it.
    let mut g = Graph::new();
    let src = g.add(ToneSource::new(1.0e6, 20.0e6, 2048));
    let bad = g.add(
        FaultPlan::new()
            .with_error_rate(1.0)
            .wrap(0xB5, NanInjector::new(1.0, 5)),
    );
    let pa = g.add(SoftClipPa::new(1.0));
    g.chain(&[src, bad, pa])?;
    g.set_breaker_policy(Some(BreakerPolicy::new().with_threshold(1)));
    let run = g.run_streaming_instrumented(256)?;

    // Watchdog: one of four scenarios hangs and is killed at its budget.
    let supervisor = SweepSupervisor::new()
        .with_scenario_budget(Duration::from_millis(150))
        .with_poll_interval(Duration::from_millis(2));
    let (_, sweep) = SweepPlan::new(4)
        .threads(2)
        .with_supervisor(supervisor)
        .run(|i, _attempt, ctx| -> Result<f64, SimError> {
            if i == 3 {
                let mut g = Graph::new();
                let src = g.add(StalledSource::new(20.0e6, Duration::from_millis(2)));
                let pa = g.add(SoftClipPa::new(1.0));
                g.chain(&[src, pa])?;
                ctx.supervise(&mut g);
                g.run_streaming(64)?;
            }
            e10_scenario_power(0xBE, i)
        });
    let watchdog = sweep
        .supervision
        .expect("supervised sweep reports supervision");

    // Checkpoint: persist half a sweep, then resume and merge.
    const COUNT: usize = 6;
    let path = std::env::temp_dir().join(format!("rfsim-bench-ckpt-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "bench", COUNT);
    let plan = SweepPlan::new(COUNT).threads(2);
    let _ = plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| {
        if i >= COUNT / 2 {
            return Err(SimError::BlockFailure {
                block: "bench".into(),
                message: "interrupted".into(),
            });
        }
        e10_scenario_power(0xCB, i)
    });
    drop(ckpt);
    let mut ckpt = SweepCheckpoint::load_or_new(&path, "bench", COUNT);
    let (_, resumed_sweep) =
        plan.run_checkpointed(&mut ckpt, |i, _attempt, _ctx| e10_scenario_power(0xCB, i));
    let resumed = resumed_sweep
        .supervision
        .expect("checkpointed sweep reports supervision")
        .resumed;
    ckpt.discard()?;

    Ok(Value::Object(vec![
        ("health".into(), run.health.as_str().into()),
        ("breaker_trips".into(), run.breaker_trips.into()),
        (
            "bypassed_invocations".into(),
            run.bypassed_invocations.into(),
        ),
        ("deadline_kills".into(), watchdog.deadline_kills.into()),
        ("resumed".into(), resumed.into()),
    ]))
}

//! Shared workload generators and measurement helpers for the benchmark
//! harness and the `experiments` binary.

pub mod gates;
pub mod lab;
pub mod theory;
pub mod waterfall;

use ofdm_core::params::OfdmParams;
use ofdm_core::tx::Frame;
use ofdm_core::MotherModel;
use ofdm_rx::receiver::ReferenceReceiver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random payload bits.
pub fn payload_bits(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..=1u8)).collect()
}

/// Transmits `n_bits` through a fresh Mother Model configured by `params`.
///
/// # Panics
///
/// Panics if the preset fails to build or transmit — presets are expected
/// to be valid.
pub fn transmit_frame(params: &OfdmParams, n_bits: usize, seed: u64) -> Frame {
    let mut tx = MotherModel::new(params.clone()).expect("valid preset");
    tx.transmit(&payload_bits(n_bits, seed))
        .expect("nonempty payload")
}

/// Runs a bit-exact loopback, returning the number of bit errors.
///
/// # Panics
///
/// Panics if the chain fails to build or decode.
pub fn loopback_errors(params: &OfdmParams, n_bits: usize, seed: u64) -> usize {
    let sent = payload_bits(n_bits, seed);
    let mut tx = MotherModel::new(params.clone()).expect("valid preset");
    let frame = tx.transmit(&sent).expect("nonempty payload");
    let mut rx = ReferenceReceiver::new(params.clone()).expect("valid preset");
    let got = rx
        .receive(frame.signal(), sent.len())
        .expect("loopback decodes");
    sent.iter().zip(&got).filter(|(a, b)| a != b).count()
}

/// EVM (dB) of a received waveform against the transmitted frame's cell
/// ground truth, after estimating and removing one common complex gain
/// (the RF chain's net gain/rotation — an RF measurement would do the
/// same normalization).
///
/// Averages over up to `max_symbols` OFDM symbols.
///
/// # Panics
///
/// Panics if the frame carries no symbols or the waveform is too short.
pub fn evm_after_gain_correction(
    params: &OfdmParams,
    frame: &Frame,
    received: &rfsim::Signal,
    max_symbols: usize,
) -> f64 {
    use ofdm_dsp::Complex64;
    let demod = ofdm_rx::demod::OfdmDemodulator::new(params.clone());
    let modulator = ofdm_core::symbol::SymbolModulator::new(
        params.map.fft_size(),
        params.guard,
        params.taper_len,
        params.map.is_hermitian(),
    )
    .expect("params validated");
    let preamble = ofdm_core::framing::preamble_len(&params.preamble, &modulator);
    let sym_len = demod.symbol_len();
    let n = frame.symbol_count().min(max_symbols).max(1);
    // Common complex gain over all cells of the first n symbols.
    let mut num = Complex64::ZERO;
    let mut den = 0.0f64;
    let mut pairs: Vec<(Complex64, Complex64)> = Vec::new();
    // Demodulate from the split re/im storage directly; the interleaved
    // samples() view would allocate a whole-waveform copy per symbol.
    let (rx_re, rx_im) = received.parts();
    for s in 0..n {
        let rx_cells = demod
            .demodulate_at_parts(rx_re, rx_im, preamble + s * sym_len, s)
            .expect("received waveform long enough");
        for (r, t) in rx_cells.iter().zip(&frame.symbol_cells()[s]) {
            debug_assert_eq!(r.0, t.0);
            num += r.1 * t.1.conj();
            den += t.1.norm_sqr();
            pairs.push((r.1, t.1));
        }
    }
    let gain = num / den;
    let mut err = 0.0;
    let mut refpow = 0.0;
    for (r, t) in pairs {
        err += (r * gain.inv() - t).norm_sqr();
        refpow += t.norm_sqr();
    }
    10.0 * (err / refpow).max(1e-20).log10()
}

/// Formats seconds human-readably (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Times a closure over `iters` runs, returning seconds per run (best of
/// three batches to shave scheduler noise).
pub fn time_per_run<F: FnMut()>(mut f: F, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters.max(1) as f64);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_core::params::presets::minimal_test_params;

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(payload_bits(64, 9), payload_bits(64, 9));
        assert_ne!(payload_bits(64, 9), payload_bits(64, 10));
        assert!(payload_bits(64, 1).iter().all(|&b| b <= 1));
    }

    #[test]
    fn loopback_helper_is_error_free() {
        assert_eq!(loopback_errors(&minimal_test_params(), 200, 3), 0);
    }

    #[test]
    fn frame_helper_transmits() {
        let f = transmit_frame(&minimal_test_params(), 48, 1);
        assert_eq!(f.symbol_count(), 2);
    }

    #[test]
    fn formatting() {
        assert!(fmt_secs(2e-6).contains("µs"));
        assert!(fmt_secs(2e-3).contains("ms"));
        assert!(fmt_secs(2.0).contains('s'));
    }

    #[test]
    fn timing_is_positive() {
        let t = time_per_run(
            || {
                std::hint::black_box(1 + 1);
            },
            10,
        );
        assert!(t >= 0.0);
    }
}

//! RF-simulator substrate benchmarks: per-block throughput of the analog
//! models and instruments, and the E6 impairment-sweep pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofdm_bench::{payload_bits, transmit_frame};
use ofdm_standards::ieee80211a::{self, WlanRate};
use rfsim::prelude::*;
use rfsim::Block;
use std::hint::black_box;

fn test_signal(n: usize) -> Signal {
    let bits = payload_bits(n, 4);
    let _ = bits;
    let frame = transmit_frame(&ieee80211a::params(WlanRate::Mbps54), n, 4);
    frame.into_signal()
}

fn bench_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_block");
    let sig = test_signal(12_000);
    group.throughput(Throughput::Elements(sig.len() as u64));

    let mut run = |name: &str, mut blk: Box<dyn Block>| {
        group.bench_with_input(BenchmarkId::from_parameter(name), &sig, |b, s| {
            b.iter(|| black_box(blk.process(std::slice::from_ref(s)).expect("processes")));
        });
    };
    run("dac_10bit", Box::new(Dac::new(10, 4.0)));
    run("rapp_pa", Box::new(RappPa::new(1.0, 3.0)));
    run("saleh_pa", Box::new(SalehPa::classic()));
    run(
        "lo_phase_noise",
        Box::new(LocalOscillator::new(1e3, 100.0, 1)),
    );
    run("iq_imbalance", Box::new(IqImbalance::new(0.3, 1.5)));
    run("awgn", Box::new(AwgnChannel::from_snr_db(20.0, 2)));
    run(
        "multipath_8tap",
        Box::new(MultipathChannel::new(
            (0..8)
                .map(|i| ofdm_dsp::Complex64::new(0.5f64.powi(i), 0.0))
                .collect(),
        )),
    );
    run("butterworth_6", Box::new(ButterworthLowpass::new(6, 5e6)));
    run("spectrum_analyzer", Box::new(SpectrumAnalyzer::new(256)));
    run("ccdf_probe", Box::new(CcdfProbe::new()));
    group.finish();
}

fn bench_impairment_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_sweep");
    group.sample_size(10);
    let frame = transmit_frame(&ieee80211a::params(WlanRate::Mbps54), 6_000, 9);
    group.bench_function("pa_backoff_point", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let src = g.add(SamplePlayback::new(frame.signal().clone()));
            let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
            let probe = g.add(CcdfProbe::new());
            g.chain(&[src, pa, probe]).expect("wires");
            g.run().expect("runs");
            black_box(g.block::<CcdfProbe>(probe).expect("present").papr_db())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_blocks, bench_impairment_sweep);
criterion_main!(benches);

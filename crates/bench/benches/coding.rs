//! FEC substrate benchmarks: convolutional encode, Viterbi decode (with
//! the traceback-depth ablation of DESIGN.md §6 expressed as message
//! length), Reed–Solomon encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofdm_bench::payload_bits;
use ofdm_core::fec::{ConvCode, ConvSpec, ReedSolomon};
use ofdm_rx::fec::ViterbiDecoder;
use std::hint::black_box;

fn bench_conv_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_encode");
    for (label, spec) in [
        ("rate_1_2", ConvSpec::k7_rate_half()),
        ("rate_3_4", ConvSpec::k7_rate_three_quarters()),
    ] {
        let bits = payload_bits(4096, 1);
        group.throughput(Throughput::Elements(bits.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            let mut enc = ConvCode::new(spec.clone()).expect("valid spec");
            b.iter(|| {
                enc.reset();
                black_box(enc.encode_terminated(&bits));
            });
        });
    }
    group.finish();
}

fn bench_viterbi(c: &mut Criterion) {
    let mut group = c.benchmark_group("viterbi_decode");
    group.sample_size(10);
    for &msg_len in &[256usize, 1024, 4096] {
        let spec = ConvSpec::k7_rate_half();
        let bits = payload_bits(msg_len, 2);
        let mut enc = ConvCode::new(spec.clone()).expect("valid spec");
        let coded = enc.encode_terminated(&bits);
        group.throughput(Throughput::Elements(msg_len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(msg_len), &coded, |b, coded| {
            let dec = ViterbiDecoder::new(spec.clone());
            b.iter(|| black_box(dec.decode_terminated(coded, msg_len)));
        });
    }
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut group = c.benchmark_group("reed_solomon_204_188");
    let rs = ReedSolomon::dvb_t204();
    let msg: Vec<u8> = (0..188).map(|i| (i * 29) as u8).collect();
    let clean = rs.encode(&msg);
    let mut errored = clean.clone();
    for e in 0..8 {
        errored[e * 25 + 1] ^= 0x5a;
    }
    group.throughput(Throughput::Bytes(188));
    group.bench_function("encode", |b| b.iter(|| black_box(rs.encode(&msg))));
    group.bench_function("decode_clean", |b| {
        b.iter(|| black_box(rs.decode(&clean).expect("clean block decodes")))
    });
    group.bench_function("decode_8_errors", |b| {
        b.iter(|| black_box(rs.decode(&errored).expect("t errors decode")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conv_encode,
    bench_viterbi,
    bench_reed_solomon
);
criterion_main!(benches);

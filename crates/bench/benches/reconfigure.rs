//! E1 timing backbone: how expensive is a Mother Model *reconfiguration*
//! (the paper's "changeover from a standard to another"), and what does
//! one transmitted frame cost per standard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdm_bench::payload_bits;
use ofdm_core::MotherModel;
use ofdm_standards::{default_params, StandardId};
use std::hint::black_box;

fn bench_reconfigure(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfigure");
    group.sample_size(20);
    for id in StandardId::ALL {
        let params = default_params(id);
        group.bench_with_input(BenchmarkId::from_parameter(id.key()), &params, |b, p| {
            let mut tx =
                MotherModel::new(default_params(StandardId::Ieee80211a)).expect("valid preset");
            b.iter(|| {
                tx.reconfigure(black_box(p.clone())).expect("valid preset");
            });
        });
    }
    group.finish();
}

fn bench_transmit(c: &mut Criterion) {
    let mut group = c.benchmark_group("transmit_frame");
    group.sample_size(10);
    for id in [
        StandardId::Ieee80211a,
        StandardId::Adsl,
        StandardId::Drm,
        StandardId::Dab,
        StandardId::DvbT,
    ] {
        let params = default_params(id);
        let bits = payload_bits(2 * params.nominal_bits_per_symbol().max(100), 7);
        group.bench_with_input(BenchmarkId::from_parameter(id.key()), &params, |b, p| {
            let mut tx = MotherModel::new(p.clone()).expect("valid preset");
            b.iter(|| {
                black_box(tx.transmit(black_box(&bits)).expect("transmits"));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconfigure, bench_transmit);
criterion_main!(benches);

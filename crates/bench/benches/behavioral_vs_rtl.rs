//! E3 benchmark: behavioral Mother Model vs the cycle-scheduled RT-level
//! transmitter, plus the RF-simulation overhead of embedding each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdm_bench::payload_bits;
use ofdm_core::source::OfdmSource;
use ofdm_core::MotherModel;
use ofdm_rtl::Tx80211aRtl;
use ofdm_standards::ieee80211a::{self, WlanRate};
use rfsim::prelude::*;
use std::hint::black_box;

const RATE: WlanRate = WlanRate::Mbps12;

fn bench_tx_abstractions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tx_abstraction");
    group.sample_size(10);
    for &n_symbols in &[10usize, 50] {
        let bits = payload_bits(n_symbols * RATE.n_cbps() / 2 - 6, 3);
        group.bench_with_input(
            BenchmarkId::new("behavioral", n_symbols),
            &bits,
            |b, bits| {
                let mut tx = MotherModel::new(ieee80211a::params(RATE)).expect("valid");
                b.iter(|| black_box(tx.transmit(bits).expect("transmits")));
            },
        );
        group.bench_with_input(BenchmarkId::new("rt_level", n_symbols), &bits, |b, bits| {
            let tx = Tx80211aRtl::new(RATE);
            b.iter(|| black_box(tx.transmit(bits)));
        });
    }
    group.finish();
}

fn bench_rf_embedding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_embedding");
    group.sample_size(10);
    let bits = 50 * RATE.n_cbps() / 2 - 6;
    let n_samples = 320 + 50 * 80;

    let build_and_run = |use_ofdm: bool| {
        let mut g = Graph::new();
        let src = if use_ofdm {
            g.add(OfdmSource::new(ieee80211a::params(RATE), bits, 1).expect("valid"))
        } else {
            g.add(ToneSource::new(1e6, 20e6, n_samples))
        };
        let dac = g.add(Dac::new(10, 4.0));
        let lo = g.add(LocalOscillator::new(0.0, 100.0, 3));
        let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
        let sa = g.add(SpectrumAnalyzer::new(256));
        g.chain(&[src, dac, lo, pa, sa]).expect("wires");
        g.run().expect("runs");
        g
    };

    group.bench_function("rf_sim_tone_source", |b| {
        b.iter(|| black_box(build_and_run(false)));
    });
    group.bench_function("rf_sim_ofdm_source", |b| {
        b.iter(|| black_box(build_and_run(true)));
    });
    group.finish();
}

criterion_group!(benches, bench_tx_abstractions, bench_rf_embedding);
criterion_main!(benches);

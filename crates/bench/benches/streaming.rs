//! Streaming-path benchmarks: the chunked scheduler vs the batch engine,
//! the frame emitter's buffer-reuse path vs `transmit`, and the parallel
//! scenario runner's scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdm_bench::payload_bits;
use ofdm_core::source::OfdmSource;
use ofdm_core::{MotherModel, StreamState};
use ofdm_standards::ieee80211a::{self, WlanRate};
use rfsim::prelude::*;
use std::hint::black_box;

const RATE: WlanRate = WlanRate::Mbps12;

/// OFDM source → PA → AWGN (fixed reference) → power meter: every block in
/// the chain has a native streaming override.
fn build_chain(bits: usize) -> (Graph, BlockId) {
    let mut g = Graph::new();
    let src = g.add(OfdmSource::new(ieee80211a::params(RATE), bits, 1).expect("valid preset"));
    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
    let ch = g.add(AwgnChannel::from_snr_db(20.0, 5).with_reference_power(0.16));
    let meter = g.add(PowerMeter::new());
    g.chain(&[src, pa, ch, meter]).expect("wires");
    (g, meter)
}

fn bench_batch_vs_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    let n_symbols = 100usize;
    let bits = n_symbols * RATE.n_cbps() / 2 - 6;
    group.bench_function(BenchmarkId::new("batch", n_symbols), |b| {
        let (mut g, _) = build_chain(bits);
        b.iter(|| g.run().expect("runs"));
    });
    for &chunk in &[80usize, 320, 1280] {
        group.bench_function(BenchmarkId::new(format!("chunk{chunk}"), n_symbols), |b| {
            let (mut g, _) = build_chain(bits);
            b.iter(|| g.run_streaming(chunk).expect("runs"));
        });
    }
    group.finish();
}

fn bench_frame_emitter(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_emitter");
    group.sample_size(10);
    let payload = payload_bits(50 * RATE.n_cbps() / 2 - 6, 3);

    group.bench_function("transmit_alloc", |b| {
        let mut tx = MotherModel::new(ieee80211a::params(RATE)).expect("valid");
        b.iter(|| black_box(tx.transmit(&payload).expect("transmits")));
    });
    group.bench_function("stream_reuse", |b| {
        let mut tx = MotherModel::new(ieee80211a::params(RATE)).expect("valid");
        let mut state = StreamState::new();
        let mut out = Vec::new();
        b.iter(|| {
            tx.begin_stream(&payload, &mut state).expect("streams");
            out.clear();
            while tx.stream_into(&mut state, 4096, &mut out) > 0 {}
            black_box(out.len())
        });
    });
    group.finish();
}

/// An 8-scenario back-off sweep at 1 vs 4 worker threads. On a single-core
/// host the two are equal (modulo spawn overhead); speedup tracks the
/// number of physical cores available.
fn bench_scenario_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_runner");
    group.sample_size(10);
    let bits = 50 * RATE.n_cbps() / 2 - 6;
    let sweep = |threads: usize| {
        SweepPlan::new(8)
            .threads(threads)
            .run_fail_fast(|i| -> Result<f64, SimError> {
                let mut g = Graph::new();
                let src = g.add(
                    OfdmSource::new(ieee80211a::params(RATE), bits, scenario_seed(7, i))
                        .expect("valid preset"),
                );
                let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(i as f64));
                let meter = g.add(PowerMeter::new());
                g.chain(&[src, pa, meter])?;
                g.run()?;
                Ok(g.block::<PowerMeter>(meter)
                    .expect("present")
                    .power()
                    .expect("ran"))
            })
            .expect("sweep runs")
            .0
    };
    for &threads in &[1usize, 4] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| black_box(sweep(threads)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_vs_streaming,
    bench_frame_emitter,
    bench_scenario_runner
);
criterion_main!(benches);

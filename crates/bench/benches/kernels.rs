//! Batched split-kernel benchmarks (DESIGN.md §3.5): the SoA hot loops
//! against the retained per-sample polar paths they replaced, on a real
//! 802.11a envelope. The `simd_speedup` object in `BENCH_ofdm.json`
//! tracks the same comparison per standard with hard `--check-bench`
//! floors; this bench is the fine-grained criterion view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofdm_bench::transmit_frame;
use ofdm_dsp::{kernels, Complex64};
use ofdm_standards::ieee80211a::{self, WlanRate};
use rfsim::prelude::*;
use std::hint::black_box;

/// An 802.11a frame tiled to at least `min` samples, as split components.
fn test_envelope(min: usize) -> (Vec<f64>, Vec<f64>) {
    let frame = transmit_frame(&ieee80211a::params(WlanRate::Mbps54), 12_000, 4);
    let (frame_re, frame_im) = frame.signal().parts();
    let (mut re, mut im) = (Vec::new(), Vec::new());
    while re.len() < min {
        re.extend_from_slice(frame_re);
        im.extend_from_slice(frame_im);
    }
    (re, im)
}

fn bench_pa_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pa_kernels");
    let (re, im) = test_envelope(1 << 15);
    let n = re.len();
    let samples: Vec<Complex64> = re
        .iter()
        .zip(&im)
        .map(|(&r, &i)| Complex64::new(r, i))
        .collect();
    group.throughput(Throughput::Elements(n as u64));

    let rapp = RappPa::new(1.0, 3.0).with_input_backoff_db(8.0);
    let saleh = SalehPa::classic().with_gain_db(-12.0);
    let clip = SoftClipPa::new(1.0).with_gain_db(-6.0);

    let mut split = |name: &str, apply: &dyn Fn(&mut [f64], &mut [f64])| {
        group.bench_with_input(BenchmarkId::new("batched", name), &(), |b, ()| {
            let mut wre = re.clone();
            let mut wim = im.clone();
            b.iter(|| {
                wre.copy_from_slice(&re);
                wim.copy_from_slice(&im);
                apply(&mut wre, &mut wim);
                black_box((&wre, &wim));
            });
        });
    };
    split("rapp_p3", &|r, i| rapp.apply_split(r, i));
    split("saleh", &|r, i| saleh.apply_split(r, i));
    split("softclip", &|r, i| clip.apply_split(r, i));

    let mut polar = |name: &str, oracle: &dyn Fn(Complex64) -> Complex64| {
        group.bench_with_input(BenchmarkId::new("scalar_polar", name), &(), |b, ()| {
            let mut out = samples.clone();
            b.iter(|| {
                for (dst, &z) in out.iter_mut().zip(&samples) {
                    *dst = oracle(z);
                }
                black_box(&out);
            });
        });
    };
    polar("rapp_p3", &|z| rapp.distort_reference(z));
    polar("saleh", &|z| saleh.distort_reference(z));
    polar("softclip", &|z| clip.distort_reference(z));
    group.finish();
}

fn bench_split_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_primitives");
    let (re, im) = test_envelope(1 << 15);
    let n = re.len();
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("scale_split", |b| {
        let mut wre = re.clone();
        let mut wim = im.clone();
        b.iter(|| {
            // Alternate inverse gains so the buffer neither decays to zero
            // nor overflows across iterations.
            kernels::scale_split(&mut wre, &mut wim, 1.0009);
            kernels::scale_split(&mut wre, &mut wim, 1.0 / 1.0009);
            black_box((&wre, &wim));
        });
    });
    group.bench_function("sum_power_split", |b| {
        b.iter(|| black_box(kernels::sum_power_split(&re, &im)));
    });
    group.bench_function("interleave", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            kernels::interleave(&re, &im, &mut out);
            black_box(&out);
        });
    });
    group.bench_function("deinterleave", |b| {
        let mut out = Vec::new();
        kernels::interleave(&re, &im, &mut out);
        let (mut wre, mut wim) = (Vec::new(), Vec::new());
        b.iter(|| {
            kernels::deinterleave(&out, &mut wre, &mut wim);
            black_box((&wre, &wim));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pa_kernels, bench_split_primitives);
criterion_main!(benches);

//! FFT-path ablation (DESIGN.md §6): the radix-2 engine vs Bluestein's
//! algorithm for the non-power-of-two DRM lengths, and scaling across the
//! family's transform sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofdm_dsp::fft::Fft;
use ofdm_dsp::Complex64;
use std::hint::black_box;

fn test_vector(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()))
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_engine");
    // 256 (DRM mode B, radix-2) vs 288 (DRM mode A, Bluestein): the two
    // neighbouring sizes show the Bluestein cost factor directly.
    for &n in &[112usize, 128, 176, 256, 288] {
        let fft = Fft::new(n);
        let input = test_vector(n);
        let label = if fft.is_radix2() {
            "radix2"
        } else {
            "bluestein"
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new(label, n), &input, |b, input| {
            let mut buf = input.clone();
            b.iter(|| {
                buf.copy_from_slice(input);
                fft.forward(&mut buf);
                black_box(&buf);
            });
        });
    }
    group.finish();
}

fn bench_family_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_family_sizes");
    group.sample_size(20);
    // One IFFT per standard's transform length.
    for &(name, n) in &[
        ("wlan_64", 64usize),
        ("homeplug_256", 256),
        ("drm_a_288", 288),
        ("adsl_512", 512),
        ("dab_2048", 2048),
        ("vdsl_8192", 8192),
    ] {
        let fft = Fft::new(n);
        let input = test_vector(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &input, |b, input| {
            let mut buf = input.clone();
            b.iter(|| {
                buf.copy_from_slice(input);
                fft.inverse(&mut buf);
                black_box(&buf);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_family_sizes);
criterion_main!(benches);

//! Telemetry overhead benchmarks: instrumented vs uninstrumented graph
//! runs, and the transmitter's stage-timing hook on vs off.
//!
//! The acceptance bar is that `run_streaming_instrumented` stays within a
//! few percent of `run_streaming` — the recorder only adds two `Instant`
//! reads and a handful of counter bumps per block invocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofdm_bench::payload_bits;
use ofdm_core::source::OfdmSource;
use ofdm_core::{MotherModel, StreamState};
use ofdm_standards::ieee80211a::{self, WlanRate};
use rfsim::prelude::*;
use std::hint::black_box;

const RATE: WlanRate = WlanRate::Mbps12;

fn build_chain(bits: usize) -> Graph {
    let mut g = Graph::new();
    let src = g.add(OfdmSource::new(ieee80211a::params(RATE), bits, 1).expect("valid preset"));
    let pa = g.add(RappPa::new(1.0, 3.0).with_input_backoff_db(8.0));
    let meter = g.add(PowerMeter::new());
    g.chain(&[src, pa, meter]).expect("wires");
    g
}

fn bench_instrumented_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_streaming");
    group.sample_size(10);
    let n_symbols = 100usize;
    let bits = n_symbols * RATE.n_cbps() / 2 - 6;
    for &chunk in &[80usize, 1280] {
        group.bench_function(BenchmarkId::new("plain", chunk), |b| {
            let mut g = build_chain(bits);
            b.iter(|| g.run_streaming(chunk).expect("runs"));
        });
        group.bench_function(BenchmarkId::new("instrumented", chunk), |b| {
            let mut g = build_chain(bits);
            b.iter(|| black_box(g.run_streaming_instrumented(chunk).expect("runs")));
        });
    }
    group.finish();
}

fn bench_instrumented_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_batch");
    group.sample_size(10);
    let bits = 100 * RATE.n_cbps() / 2 - 6;
    group.bench_function("plain", |b| {
        let mut g = build_chain(bits);
        b.iter(|| g.run().expect("runs"));
    });
    group.bench_function("instrumented", |b| {
        let mut g = build_chain(bits);
        b.iter(|| black_box(g.run_instrumented().expect("runs")));
    });
    group.finish();
}

fn bench_stage_timing(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_timing");
    group.sample_size(10);
    let payload = payload_bits(50 * RATE.n_cbps() / 2 - 6, 3);
    for &timed in &[false, true] {
        let label = if timed { "on" } else { "off" };
        group.bench_function(BenchmarkId::new("stream", label), |b| {
            let mut tx = MotherModel::new(ieee80211a::params(RATE)).expect("valid");
            let mut state = StreamState::new();
            state.set_stage_timing(timed);
            let mut out = Vec::new();
            b.iter(|| {
                tx.begin_stream(&payload, &mut state).expect("streams");
                out.clear();
                while tx.stream_into(&mut state, 4096, &mut out) > 0 {}
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_instrumented_streaming,
    bench_instrumented_batch,
    bench_stage_timing
);
criterion_main!(benches);

//! Cycle-trace recording (a minimal VCD-style dump).
//!
//! RT-level debugging lives on waveforms; [`Trace`] records named signals
//! per cycle and renders a compact text dump for inspection in tests and
//! examples.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A per-cycle recording of named integer signals.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// signal → (cycle, value) change list.
    signals: BTreeMap<String, Vec<(u64, i64)>>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records `value` for `signal` at `cycle` (only changes are stored).
    pub fn record(&mut self, signal: &str, cycle: u64, value: i64) {
        let entries = self.signals.entry(signal.to_owned()).or_default();
        if entries.last().map(|&(_, v)| v) != Some(value) {
            entries.push((cycle, value));
        }
    }

    /// Number of signals traced.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The change list of one signal.
    pub fn changes(&self, signal: &str) -> Option<&[(u64, i64)]> {
        self.signals.get(signal).map(Vec::as_slice)
    }

    /// The value of `signal` at `cycle` (last change at or before it).
    pub fn value_at(&self, signal: &str, cycle: u64) -> Option<i64> {
        let changes = self.signals.get(signal)?;
        changes
            .iter()
            .take_while(|&&(c, _)| c <= cycle)
            .last()
            .map(|&(_, v)| v)
    }

    /// Renders a text dump: one line per signal listing `cycle:value`
    /// changes.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (name, changes) in &self.signals {
            let _ = write!(out, "{name}:");
            for (c, v) in changes {
                let _ = write!(out, " {c}:{v}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_changes() {
        let mut t = Trace::new();
        t.record("state", 0, 0);
        t.record("state", 1, 0); // no change — dropped
        t.record("state", 2, 1);
        assert_eq!(t.changes("state").unwrap(), &[(0, 0), (2, 1)]);
        assert_eq!(t.signal_count(), 1);
    }

    #[test]
    fn value_lookup() {
        let mut t = Trace::new();
        t.record("x", 5, 10);
        t.record("x", 9, 20);
        assert_eq!(t.value_at("x", 4), None);
        assert_eq!(t.value_at("x", 5), Some(10));
        assert_eq!(t.value_at("x", 8), Some(10));
        assert_eq!(t.value_at("x", 100), Some(20));
        assert_eq!(t.value_at("missing", 0), None);
    }

    #[test]
    fn dump_contains_signals() {
        let mut t = Trace::new();
        t.record("a", 1, 7);
        t.record("b", 2, -3);
        let d = t.dump();
        assert!(d.contains("a: 1:7"));
        assert!(d.contains("b: 2:-3"));
    }
}

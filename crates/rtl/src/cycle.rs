//! The clocked simulation kernel.
//!
//! RT-level simulation advances one clock edge at a time: every register
//! in the design updates on each edge, whether or not anything interesting
//! happens. [`Scheduler`] dispatches a design's [`Clocked::rising_edge`]
//! until it reports completion, counting cycles — this per-edge dispatch
//! is the cost structure the paper contrasts with behavioral models.

/// A synchronous component: one callback per rising clock edge.
pub trait Clocked {
    /// Advances one clock cycle. Returns `false` once the component has
    /// finished its work (the scheduler stops).
    fn rising_edge(&mut self) -> bool;
}

/// A D-flip-flop-like register: writes to `d` appear at `q` only after a
/// clock edge, giving components honest register-transfer semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Register<T: Copy + Default> {
    d: T,
    q: T,
}

impl<T: Copy + Default> Register<T> {
    /// A register holding the default value.
    pub fn new() -> Self {
        Register::default()
    }

    /// Schedules `value` for the next edge.
    pub fn set_d(&mut self, value: T) {
        self.d = value;
    }

    /// The registered (visible) value.
    pub fn q(&self) -> T {
        self.q
    }

    /// Clock edge: `q ← d`.
    pub fn clock(&mut self) {
        self.q = self.d;
    }

    /// Resets both latches to the default value.
    pub fn reset(&mut self) {
        self.d = T::default();
        self.q = T::default();
    }
}

/// Runs clocked components and counts elapsed cycles.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    cycle: u64,
}

impl Scheduler {
    /// A scheduler at cycle 0.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// The current cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Advances the design one edge; returns what the design returned.
    pub fn step(&mut self, design: &mut dyn Clocked) -> bool {
        self.cycle += 1;
        design.rising_edge()
    }

    /// Clocks the design until it finishes or `max_cycles` elapse;
    /// returns the cycles spent in this call.
    pub fn run(&mut self, design: &mut dyn Clocked, max_cycles: u64) -> u64 {
        let start = self.cycle;
        for _ in 0..max_cycles {
            if !self.step(design) {
                break;
            }
        }
        self.cycle - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        register: Register<u32>,
        limit: u32,
    }

    impl Clocked for Counter {
        fn rising_edge(&mut self) -> bool {
            self.register.set_d(self.register.q() + 1);
            self.register.clock();
            self.register.q() < self.limit
        }
    }

    #[test]
    fn register_has_edge_semantics() {
        let mut r: Register<u8> = Register::new();
        r.set_d(7);
        assert_eq!(r.q(), 0, "d must not appear before the edge");
        r.clock();
        assert_eq!(r.q(), 7);
        r.reset();
        assert_eq!(r.q(), 0);
    }

    #[test]
    fn scheduler_counts_cycles() {
        let mut s = Scheduler::new();
        let mut c = Counter {
            register: Register::new(),
            limit: 10,
        };
        let spent = s.run(&mut c, 1000);
        assert_eq!(spent, 10);
        assert_eq!(s.cycles(), 10);
        assert_eq!(c.register.q(), 10);
    }

    #[test]
    fn scheduler_respects_max_cycles() {
        let mut s = Scheduler::new();
        let mut c = Counter {
            register: Register::new(),
            limit: u32::MAX,
        };
        let spent = s.run(&mut c, 25);
        assert_eq!(spent, 25);
    }

    #[test]
    fn step_by_step() {
        let mut s = Scheduler::new();
        let mut c = Counter {
            register: Register::new(),
            limit: 2,
        };
        assert!(s.step(&mut c));
        assert!(!s.step(&mut c));
        assert_eq!(s.cycles(), 2);
    }
}

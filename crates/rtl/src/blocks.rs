//! Bit-serial RTL building blocks: scrambler, convolutional encoder,
//! puncturer, interleaver RAM and mapper ROM.
//!
//! Each block exposes a `step`-per-cycle interface with explicit shift
//! registers — the structure a synthesized 802.11a datapath has, and the
//! reason it costs a simulator so much more than the behavioral model.

use crate::fixed::{FxComplex, FxFormat};
use ofdm_core::constellation::Modulation;

/// The 802.11a scrambler as a 7-bit shift register (x⁷+x⁴+1).
#[derive(Debug, Clone)]
pub struct ScramblerRtl {
    shift: [u8; 7],
}

impl ScramblerRtl {
    /// All-ones initial state (matching the behavioral preset).
    pub fn new() -> Self {
        ScramblerRtl { shift: [1; 7] }
    }

    /// One clock: scrambles one bit.
    pub fn step(&mut self, bit: u8) -> u8 {
        // Feedback = x7 ⊕ x4 (register positions 6 and 3, counting age).
        let feedback = self.shift[6] ^ self.shift[3];
        // Shift: newest value enters position 0.
        for i in (1..7).rev() {
            self.shift[i] = self.shift[i - 1];
        }
        self.shift[0] = feedback;
        (bit & 1) ^ feedback
    }

    /// Reloads the all-ones seed.
    pub fn reset(&mut self) {
        self.shift = [1; 7];
    }

    /// Evaluates the combinational feedback without committing — the work
    /// an HDL kernel performs for this clocked process on *every* edge,
    /// enabled or not.
    #[inline(never)]
    pub fn eval_idle(&self) -> u8 {
        self.shift[6] ^ self.shift[3]
    }
}

impl Default for ScramblerRtl {
    fn default() -> Self {
        ScramblerRtl::new()
    }
}

/// The K=7 convolutional encoder as a 7-bit shift register with two
/// parity trees (g₀=133₈, g₁=171₈, LSB = newest bit — matching the
/// behavioral [`ofdm_core::fec::ConvCode`] convention).
#[derive(Debug, Clone, Default)]
pub struct ConvEncoderRtl {
    shift: u32,
}

impl ConvEncoderRtl {
    /// Zero-state encoder.
    pub fn new() -> Self {
        ConvEncoderRtl::default()
    }

    /// One clock: shifts in a bit, produces the two coded bits.
    pub fn step(&mut self, bit: u8) -> (u8, u8) {
        self.shift = ((self.shift << 1) | (bit as u32 & 1)) & 0x7f;
        let a = ((self.shift & 0o133).count_ones() & 1) as u8;
        let b = ((self.shift & 0o171).count_ones() & 1) as u8;
        (a, b)
    }

    /// Clears the shift register.
    pub fn reset(&mut self) {
        self.shift = 0;
    }

    /// Evaluates both parity trees without shifting (idle-edge work).
    #[inline(never)]
    pub fn eval_idle(&self) -> (u8, u8) {
        let a = ((self.shift & 0o133).count_ones() & 1) as u8;
        let b = ((self.shift & 0o171).count_ones() & 1) as u8;
        (a, b)
    }
}

/// A puncturing FSM over the serialized coded stream.
#[derive(Debug, Clone)]
pub struct PunctureRtl {
    pattern: Vec<bool>,
    phase: usize,
}

impl PunctureRtl {
    /// A puncturer with the given keep/delete pattern (empty = keep all).
    pub fn new(pattern: Vec<bool>) -> Self {
        PunctureRtl { pattern, phase: 0 }
    }

    /// One coded bit in; `Some(bit)` out if kept.
    pub fn step(&mut self, bit: u8) -> Option<u8> {
        if self.pattern.is_empty() {
            return Some(bit);
        }
        let keep = self.pattern[self.phase];
        self.phase = (self.phase + 1) % self.pattern.len();
        keep.then_some(bit)
    }

    /// Returns to phase 0.
    pub fn reset(&mut self) {
        self.phase = 0;
    }
}

/// A double-buffered interleaver RAM: `write` fills one page over
/// `n_cbps` cycles, then `read` drains it in permuted order while the
/// other page fills — one bit per cycle each way.
#[derive(Debug, Clone)]
pub struct InterleaverRamRtl {
    /// perm[j] = write address read at output position j.
    perm: Vec<usize>,
    page: [Vec<u8>; 2],
    write_page: usize,
    write_addr: usize,
    read_addr: usize,
}

impl InterleaverRamRtl {
    /// Builds from the output-position→input-index permutation.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is empty.
    pub fn new(perm: Vec<usize>) -> Self {
        assert!(!perm.is_empty(), "permutation must be nonempty");
        let n = perm.len();
        InterleaverRamRtl {
            perm,
            page: [vec![0; n], vec![0; n]],
            write_page: 0,
            write_addr: 0,
            read_addr: 0,
        }
    }

    /// Block size in bits.
    pub fn block_len(&self) -> usize {
        self.perm.len()
    }

    /// One write cycle; returns `true` when the page just filled.
    pub fn write(&mut self, bit: u8) -> bool {
        let n = self.perm.len();
        self.page[self.write_page][self.write_addr] = bit & 1;
        self.write_addr += 1;
        if self.write_addr == n {
            self.write_addr = 0;
            self.write_page ^= 1;
            self.read_addr = 0;
            true
        } else {
            false
        }
    }

    /// One read cycle from the last-filled page (permuted order).
    pub fn read(&mut self) -> u8 {
        let bit = self.page[self.write_page ^ 1][self.perm[self.read_addr]];
        self.read_addr = (self.read_addr + 1) % self.perm.len();
        bit
    }

    /// Evaluates the current read port without advancing (idle-edge work).
    #[inline(never)]
    pub fn eval_idle(&self) -> u8 {
        self.page[self.write_page ^ 1][self.perm[self.read_addr]]
    }
}

/// A constellation-mapper ROM in fixed point: the 2^b points of a
/// modulation quantized once at construction (the hardware's lookup
/// table).
#[derive(Debug, Clone)]
pub struct MapperRomRtl {
    points: Vec<FxComplex>,
    bits: usize,
}

impl MapperRomRtl {
    /// Quantizes `modulation`'s points into `format`.
    pub fn new(modulation: Modulation, format: FxFormat) -> Self {
        let bits = modulation.bits_per_symbol();
        let points = modulation
            .points()
            .into_iter()
            .map(|p| FxComplex::from_f64(p.re, p.im, format))
            .collect();
        MapperRomRtl { points, bits }
    }

    /// Bits consumed per lookup.
    pub fn bits_per_symbol(&self) -> usize {
        self.bits
    }

    /// One clock: looks up the point for `bits` (MSB first).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.bits_per_symbol()`.
    pub fn step(&self, bits: &[u8]) -> FxComplex {
        assert_eq!(bits.len(), self.bits, "wrong bit-group width");
        let addr = bits
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | (b as usize & 1));
        self.points[addr]
    }

    /// Evaluates the ROM read port at its current (parked) address
    /// (idle-edge work).
    #[inline(never)]
    pub fn eval_idle(&self) -> FxComplex {
        self.points[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_core::scramble::{Scrambler, ScramblerSpec};

    #[test]
    fn rtl_scrambler_matches_behavioral() {
        let mut rtl = ScramblerRtl::new();
        let mut beh = Scrambler::new(ScramblerSpec::ieee80211());
        let bits: Vec<u8> = (0..256).map(|i| ((i * 3) % 2) as u8).collect();
        let expected = beh.scramble(&bits);
        let got: Vec<u8> = bits.iter().map(|&b| rtl.step(b)).collect();
        assert_eq!(got, expected);
        rtl.reset();
        assert_eq!(rtl.step(0), expected[0] ^ bits[0]);
    }

    #[test]
    fn rtl_encoder_matches_behavioral() {
        use ofdm_core::fec::{ConvCode, ConvSpec};
        let mut rtl = ConvEncoderRtl::new();
        let mut beh = ConvCode::new(ConvSpec::k7_rate_half()).unwrap();
        let bits: Vec<u8> = (0..128).map(|i| ((i * 7 + 1) % 3 == 0) as u8).collect();
        let expected = beh.encode(&bits);
        let mut got = Vec::new();
        for &b in &bits {
            let (a, bb) = rtl.step(b);
            got.push(a);
            got.push(bb);
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn puncture_fsm_keeps_pattern() {
        let mut p = PunctureRtl::new(vec![true, true, true, false]);
        let outs: Vec<Option<u8>> = (0..8).map(|i| p.step((i % 2) as u8)).collect();
        assert!(outs[0].is_some() && outs[1].is_some() && outs[2].is_some());
        assert!(outs[3].is_none());
        assert!(outs[7].is_none());
        p.reset();
        assert!(p.step(1).is_some());
    }

    #[test]
    fn puncture_passthrough_when_empty() {
        let mut p = PunctureRtl::new(vec![]);
        assert_eq!(p.step(1), Some(1));
    }

    #[test]
    fn interleaver_ram_double_buffers() {
        // Identity permutation over 4 bits: read returns write order.
        let mut ram = InterleaverRamRtl::new(vec![0, 1, 2, 3]);
        assert_eq!(ram.block_len(), 4);
        for (i, b) in [1u8, 0, 1, 1].iter().enumerate() {
            let full = ram.write(*b);
            assert_eq!(full, i == 3);
        }
        let out: Vec<u8> = (0..4).map(|_| ram.read()).collect();
        assert_eq!(out, vec![1, 0, 1, 1]);
    }

    #[test]
    fn interleaver_ram_applies_permutation() {
        let mut ram = InterleaverRamRtl::new(vec![3, 2, 1, 0]);
        for b in [1u8, 0, 0, 1] {
            ram.write(b);
        }
        let out: Vec<u8> = (0..4).map(|_| ram.read()).collect();
        assert_eq!(out, vec![1, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_permutation_panics() {
        let _ = InterleaverRamRtl::new(vec![]);
    }

    #[test]
    fn mapper_rom_quantizes_constellation() {
        let fmt = FxFormat::new(16, 14);
        let rom = MapperRomRtl::new(Modulation::Qpsk, fmt);
        assert_eq!(rom.bits_per_symbol(), 2);
        let p = rom.step(&[1, 1]);
        let (re, im) = p.to_f64();
        let expect = 1.0 / 2f64.sqrt();
        assert!((re - expect).abs() < 1e-3);
        assert!((im - expect).abs() < 1e-3);
    }

    #[test]
    fn mapper_rom_matches_behavioral_within_lsb() {
        let fmt = FxFormat::new(16, 13);
        let m = Modulation::Qam(6);
        let rom = MapperRomRtl::new(m, fmt);
        for v in 0..64usize {
            let bits: Vec<u8> = (0..6).rev().map(|k| ((v >> k) & 1) as u8).collect();
            let ideal = m.map(&bits);
            let (re, im) = rom.step(&bits).to_f64();
            assert!((re - ideal.re).abs() <= fmt.lsb());
            assert!((im - ideal.im).abs() <= fmt.lsb());
        }
    }
}

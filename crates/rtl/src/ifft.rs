//! Bit-true iterative radix-2 IFFT with quantized twiddle ROM.
//!
//! Implements the decimation-in-time structure a hardware IFFT uses: a
//! bit-reversal load pass followed by log₂N butterfly stages. Every
//! butterfly output is halved (with rounding) to prevent overflow, which
//! makes the overall gain exactly 1/N — the same convention as the
//! behavioral [`ofdm_dsp::fft::Fft::inverse`], so outputs are directly
//! comparable (experiment E5).

use crate::fixed::{FxComplex, FxFormat};
use std::f64::consts::PI;

/// A fixed-point IFFT engine for one power-of-two length and word format.
#[derive(Debug, Clone)]
pub struct FxIfft {
    n: usize,
    format: FxFormat,
    /// Twiddle ROM: e^{+i 2π k / N} for k in 0..N/2, quantized.
    twiddles: Vec<FxComplex>,
    rev: Vec<u32>,
}

impl FxIfft {
    /// Builds the engine (twiddle ROM quantized into `format`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2.
    pub fn new(n: usize, format: FxFormat) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "length must be a power of two"
        );
        let bits = n.trailing_zeros();
        let twiddles = (0..n / 2)
            .map(|k| {
                let theta = 2.0 * PI * k as f64 / n as f64;
                FxComplex::from_f64(theta.cos(), theta.sin(), format)
            })
            .collect();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        FxIfft {
            n,
            format,
            twiddles,
            rev,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for a zero-length engine (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The datapath word format.
    pub fn format(&self) -> FxFormat {
        self.format
    }

    /// Butterfly operations one transform performs (the cycle cost of the
    /// datapath, excluding the load pass): `(N/2)·log₂N`.
    pub fn butterfly_count(&self) -> u64 {
        (self.n as u64 / 2) * self.n.trailing_zeros() as u64
    }

    /// In-place bit-true IFFT with per-stage 1/2 scaling (total 1/N).
    ///
    /// Returns the number of butterfly operations performed.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the engine length.
    pub fn transform(&self, buf: &mut [FxComplex]) -> u64 {
        assert_eq!(buf.len(), self.n, "buffer length must match engine");
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut ops = 0u64;
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let stride = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let a = buf[start + k];
                    let b = buf[start + k + half].mul(tw);
                    // Halve both outputs: overflow-safe stage scaling.
                    buf[start + k] = a.add(b).half();
                    buf[start + k + half] = a.sub(b).half();
                    ops += 1;
                }
            }
            len <<= 1;
        }
        ops
    }
}

/// A cycle-steppable IFFT execution: one bit-reverse load or one butterfly
/// per [`IfftStepper::step`], the way the hardware datapath actually
/// spends its clock cycles.
#[derive(Debug, Clone)]
pub struct IfftStepper {
    engine: FxIfft,
    buf: Vec<FxComplex>,
    /// Remaining load (bit-reversal) micro-ops.
    load_pos: usize,
    /// Current stage span (2, 4, …, n); 0 once finished.
    len: usize,
    start: usize,
    k: usize,
}

impl IfftStepper {
    /// Begins a transform of `grid` (consumed into the stepper).
    ///
    /// # Panics
    ///
    /// Panics if `grid.len()` differs from the engine length.
    pub fn new(engine: FxIfft, grid: Vec<FxComplex>) -> Self {
        assert_eq!(grid.len(), engine.n, "grid length must match engine");
        IfftStepper {
            buf: grid,
            engine,
            load_pos: 0,
            len: 2,
            start: 0,
            k: 0,
        }
    }

    /// Total micro-ops (cycles) a full transform takes: N loads +
    /// (N/2)·log₂N butterflies.
    pub fn total_cycles(&self) -> u64 {
        self.engine.n as u64 + self.engine.butterfly_count()
    }

    /// Executes one micro-op; returns `true` if work was performed,
    /// `false` once the transform has already completed.
    pub fn step(&mut self) -> bool {
        let n = self.engine.n;
        if self.load_pos < n {
            // One bit-reversal load per cycle.
            let i = self.load_pos;
            let j = self.engine.rev[i] as usize;
            if i < j {
                self.buf.swap(i, j);
            }
            self.load_pos += 1;
            return true;
        }
        if self.len > n {
            return false;
        }
        // One butterfly.
        let half = self.len / 2;
        let stride = n / self.len;
        let tw = self.engine.twiddles[self.k * stride];
        let a = self.buf[self.start + self.k];
        let b = self.buf[self.start + self.k + half].mul(tw);
        self.buf[self.start + self.k] = a.add(b).half();
        self.buf[self.start + self.k + half] = a.sub(b).half();
        // Advance the (k, start, len) iteration.
        self.k += 1;
        if self.k == half {
            self.k = 0;
            self.start += self.len;
            if self.start >= n {
                self.start = 0;
                self.len <<= 1;
            }
        }
        true
    }

    /// Whether the transform has completed.
    pub fn is_done(&self) -> bool {
        self.load_pos >= self.engine.n && self.len > self.engine.n
    }

    /// Takes the finished (or in-progress) buffer out.
    pub fn into_result(self) -> Vec<FxComplex> {
        self.buf
    }

    /// Borrows the working buffer.
    pub fn result(&self) -> &[FxComplex] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_dsp::fft::Fft;
    use ofdm_dsp::Complex64;

    fn max_err_vs_float(n: usize, format: FxFormat) -> f64 {
        // A deterministic multi-tone grid.
        let grid: Vec<Complex64> = (0..n)
            .map(|k| {
                if k % 5 == 1 {
                    Complex64::cis(k as f64 * 0.7).scale(0.5)
                } else {
                    Complex64::ZERO
                }
            })
            .collect();
        let float_out = Fft::new(n).inverse_to_vec(&grid);
        let mut fx: Vec<FxComplex> = grid
            .iter()
            .map(|z| FxComplex::from_f64(z.re, z.im, format))
            .collect();
        FxIfft::new(n, format).transform(&mut fx);
        fx.iter()
            .zip(&float_out)
            .map(|(q, f)| {
                let (re, im) = q.to_f64();
                (Complex64::new(re, im) - *f).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_float_ifft_at_16_bits() {
        let err = max_err_vs_float(64, FxFormat::new(16, 14));
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn error_shrinks_with_wordlength() {
        let e8 = max_err_vs_float(64, FxFormat::new(10, 8));
        let e16 = max_err_vs_float(64, FxFormat::new(18, 16));
        let e24 = max_err_vs_float(64, FxFormat::new(26, 24));
        assert!(e16 < e8 / 10.0, "e8 {e8} e16 {e16}");
        assert!(e24 < e16, "e16 {e16} e24 {e24}");
    }

    #[test]
    fn impulse_gives_flat_output() {
        let fmt = FxFormat::new(18, 16);
        let n = 32;
        let ifft = FxIfft::new(n, fmt);
        let mut buf = vec![FxComplex::zero(fmt); n];
        buf[0] = FxComplex::from_f64(0.5, 0.0, fmt);
        ifft.transform(&mut buf);
        // IFFT of an impulse = constant 0.5/32.
        for q in &buf {
            let (re, im) = q.to_f64();
            assert!((re - 0.5 / 32.0).abs() < 1e-3, "re {re}");
            assert!(im.abs() < 1e-3);
        }
    }

    #[test]
    fn butterfly_count_formula() {
        let ifft = FxIfft::new(64, FxFormat::new(16, 14));
        assert_eq!(ifft.butterfly_count(), 32 * 6);
        let mut buf = vec![FxComplex::zero(ifft.format()); 64];
        let ops = ifft.transform(&mut buf);
        assert_eq!(ops, ifft.butterfly_count());
        assert_eq!(ifft.len(), 64);
        assert!(!ifft.is_empty());
    }

    #[test]
    fn saturation_does_not_wrap() {
        // Full-scale inputs must saturate gracefully, never wrap sign.
        let fmt = FxFormat::new(12, 10);
        let n = 16;
        let ifft = FxIfft::new(n, fmt);
        let mut buf: Vec<FxComplex> = (0..n)
            .map(|_| FxComplex::from_f64(1.9, -1.9, fmt))
            .collect();
        ifft.transform(&mut buf);
        for q in &buf {
            let (re, im) = q.to_f64();
            assert!(re.abs() <= 2.0 && im.abs() <= 2.0);
        }
    }

    #[test]
    fn stepper_matches_batch_transform() {
        let fmt = FxFormat::new(18, 15);
        let n = 64;
        let grid: Vec<FxComplex> = (0..n)
            .map(|k| {
                FxComplex::from_f64(
                    (k as f64 * 0.3).sin() * 0.4,
                    (k as f64 * 0.9).cos() * 0.4,
                    fmt,
                )
            })
            .collect();
        let engine = FxIfft::new(n, fmt);
        let mut batch = grid.clone();
        engine.transform(&mut batch);

        let mut stepper = IfftStepper::new(engine, grid);
        let total = stepper.total_cycles();
        let mut cycles = 0u64;
        while stepper.step() {
            cycles += 1;
        }
        assert!(stepper.is_done());
        // All loads + all butterflies, one micro-op per step.
        assert_eq!(cycles, total, "one micro-op per cycle");
        assert_eq!(stepper.result(), &batch[..]);
        assert_eq!(stepper.into_result(), batch);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let _ = FxIfft::new(48, FxFormat::new(16, 14));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_rejected() {
        let ifft = FxIfft::new(16, FxFormat::new(16, 14));
        let mut buf = vec![FxComplex::zero(ifft.format()); 8];
        ifft.transform(&mut buf);
    }
}

//! # RT-level OFDM transmitter baseline
//!
//! The paper's motivation is that "IP blocks on the market are typically
//! described at RT-level which causes an impractical increase to the
//! simulation times". To reproduce that comparison (experiment E3) and the
//! behavioral↔RTL functional-equivalence check (E5), this crate implements
//! an 802.11a transmitter the way a synthesizable design would simulate:
//!
//! * **bit-true** — all datapath arithmetic in Q-format fixed point
//!   ([`fixed`]) with saturation and rounding, including a quantized
//!   twiddle-ROM radix-2 IFFT ([`ifft`]);
//! * **cycle-scheduled** — every register update happens inside a clocked
//!   simulation kernel ([`cycle`]) that dispatches components one clock
//!   edge at a time, exactly the cost structure that makes RT-level IP
//!   impractical inside an RF system simulator.
//!
//! The top-level [`tx80211a::Tx80211aRtl`] produces frames comparable
//! sample-for-sample with the behavioral Mother Model configured as
//! 802.11a.

pub mod blocks;
pub mod cycle;
pub mod fixed;
pub mod ifft;
pub mod trace;
pub mod tx80211a;

pub use fixed::{Fx, FxFormat};
pub use tx80211a::Tx80211aRtl;

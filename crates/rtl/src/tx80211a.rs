//! The cycle-scheduled, bit-true 802.11a transmitter.
//!
//! A finite-state machine advances one micro-operation per clock edge —
//! scramble/encode one bit, write/read one interleaver RAM bit, one mapper
//! ROM lookup, one IFFT butterfly, one output sample — reproducing the
//! cost structure of simulating a synthesizable design. Functionally it
//! matches the behavioral Mother Model configured as 802.11a up to
//! fixed-point quantization (verified by experiment E5).

use crate::blocks::{ConvEncoderRtl, InterleaverRamRtl, MapperRomRtl, PunctureRtl, ScramblerRtl};
use crate::cycle::{Clocked, Scheduler};
use crate::fixed::{FxComplex, FxFormat};
use crate::ifft::{FxIfft, IfftStepper};
use crate::trace::Trace;
use ofdm_core::pilots::{ieee80211a_pilots, PilotGenerator};
use ofdm_dsp::Complex64;
use ofdm_standards::ieee80211a::{self, WlanRate};
use std::collections::VecDeque;
use std::hint::black_box;

/// One transmitted RT-level frame.
#[derive(Debug, Clone)]
pub struct RtlFrame {
    /// Final waveform (fixed-point results converted to float at the
    /// "DAC boundary", scaled to match the behavioral model).
    pub samples: Vec<Complex64>,
    /// Clock cycles the frame took to produce.
    pub cycles: u64,
}

/// The RT-level 802.11a transmitter.
#[derive(Debug, Clone)]
pub struct Tx80211aRtl {
    rate: WlanRate,
    format: FxFormat,
}

impl Tx80211aRtl {
    /// A transmitter at `rate` with a 16-bit (Q16.12) datapath.
    pub fn new(rate: WlanRate) -> Self {
        Tx80211aRtl {
            rate,
            format: FxFormat::new(16, 12),
        }
    }

    /// Builder: selects the datapath word format (E5 sweeps this).
    pub fn with_format(mut self, format: FxFormat) -> Self {
        self.format = format;
        self
    }

    /// The configured rate.
    pub fn rate(&self) -> WlanRate {
        self.rate
    }

    /// The datapath format.
    pub fn format(&self) -> FxFormat {
        self.format
    }

    /// Transmits `payload` bits, clocking the design to completion.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty.
    pub fn transmit(&self, payload: &[u8]) -> RtlFrame {
        self.transmit_impl(payload, None).0
    }

    /// Like [`Tx80211aRtl::transmit`], additionally recording the control
    /// FSM's phase and output count per cycle into a waveform
    /// [`Trace`] — the RT-level debugging view a behavioral model never
    /// needs.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty.
    pub fn transmit_traced(&self, payload: &[u8]) -> (RtlFrame, Trace) {
        let (frame, trace) = self.transmit_impl(payload, Some(Trace::new()));
        (frame, trace.expect("trace requested"))
    }

    fn transmit_impl(&self, payload: &[u8], mut trace: Option<Trace>) -> (RtlFrame, Option<Trace>) {
        assert!(!payload.is_empty(), "payload must be nonempty");
        let mut machine = TxMachine::new(self.rate, self.format, payload);
        let mut scheduler = Scheduler::new();
        // Generous bound: the design finishes long before this.
        let bound = 10_000_000 + payload.len() as u64 * 1_000;
        match trace.as_mut() {
            None => {
                scheduler.run(&mut machine, bound);
            }
            Some(t) => {
                for _ in 0..bound {
                    let cycle = scheduler.cycles();
                    t.record("phase", cycle, machine.phase as i64);
                    t.record("out_samples", cycle, machine.out.len() as i64);
                    t.record("in_pos", cycle, machine.in_pos as i64);
                    if !scheduler.step(&mut machine) {
                        break;
                    }
                }
            }
        }
        assert!(
            machine.done(),
            "FSM failed to finish within the cycle bound"
        );
        let frame = RtlFrame {
            samples: machine.into_output(),
            cycles: scheduler.cycles(),
        };
        (frame, trace)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(i64)]
enum Phase {
    Preamble = 0,
    Input = 1,
    Read = 2,
    Map = 3,
    Ifft = 4,
    Output = 5,
    Done = 6,
}

struct TxMachine {
    // Datapath blocks.
    scrambler: ScramblerRtl,
    encoder: ConvEncoderRtl,
    puncture: PunctureRtl,
    ram: InterleaverRamRtl,
    mapper: MapperRomRtl,
    ifft: FxIfft,
    pilots: PilotGenerator,
    data_carriers: Vec<i32>,
    format: FxFormat,
    // Input stream: payload + 6 tail zeros.
    in_bits: Vec<u8>,
    in_pos: usize,
    coded_fifo: VecDeque<u8>,
    page_fill: usize,
    n_cbps: usize,
    n_bpsc: usize,
    // Per-symbol workspace.
    read_bits: Vec<u8>,
    grid: Vec<FxComplex>,
    body: Vec<FxComplex>,
    symbol_index: usize,
    // Phase bookkeeping.
    phase: Phase,
    sub: usize,
    stepper: Option<IfftStepper>,
    // Preamble ROM and output buffer.
    preamble_rom: Vec<Complex64>,
    out: Vec<Complex64>,
    out_scale: f64,
}

impl TxMachine {
    fn new(rate: WlanRate, format: FxFormat, payload: &[u8]) -> Self {
        let n_bpsc = rate.modulation().bits_per_symbol();
        let n_cbps = rate.n_cbps();
        // The interleaver RAM's read-address ROM: the same two-permutation
        // table the behavioral Interleaver uses (output j reads input
        // perm[j]).
        let mut perm = vec![0usize; n_cbps];
        for k in 0..n_cbps {
            let i = (n_cbps / 16) * (k % 16) + k / 16;
            let s = (n_bpsc / 2).max(1);
            let j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
            perm[j] = k;
        }

        let mut in_bits: Vec<u8> = payload.iter().map(|&b| b & 1).collect();
        in_bits.extend([0u8; 6]); // trellis termination

        let map = ieee80211a::subcarrier_map();
        let preamble_rom = Self::quantized_preamble(format);

        TxMachine {
            scrambler: ScramblerRtl::new(),
            encoder: ConvEncoderRtl::new(),
            puncture: PunctureRtl::new(rate.conv_spec().puncture.pattern.clone()),
            ram: InterleaverRamRtl::new(perm),
            mapper: MapperRomRtl::new(rate.modulation(), format),
            ifft: FxIfft::new(64, format),
            pilots: PilotGenerator::new(ieee80211a_pilots()),
            data_carriers: map.data_carriers().to_vec(),
            format,
            in_bits,
            in_pos: 0,
            coded_fifo: VecDeque::new(),
            page_fill: 0,
            n_cbps,
            n_bpsc,
            read_bits: Vec::with_capacity(n_cbps),
            grid: vec![FxComplex::zero(format); 64],
            body: Vec::new(),
            symbol_index: 0,
            phase: Phase::Preamble,
            sub: 0,
            stepper: None,
            preamble_rom,
            out: Vec::new(),
            out_scale: 64.0 / 52f64.sqrt(),
        }
    }

    /// The STF+LTF passed through the fixed-point quantizer (a sample ROM
    /// in hardware).
    fn quantized_preamble(format: FxFormat) -> Vec<Complex64> {
        let mut rom = ieee80211a::short_training_field();
        rom.extend(ieee80211a::long_training_field());
        rom.into_iter()
            .map(|z| {
                let q = FxComplex::from_f64(z.re, z.im, format);
                let (re, im) = q.to_f64();
                Complex64::new(re, im)
            })
            .collect()
    }

    fn done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn into_output(self) -> Vec<Complex64> {
        self.out
    }

    fn input_exhausted(&self) -> bool {
        self.in_pos >= self.in_bits.len() && self.coded_fifo.is_empty()
    }
}

impl TxMachine {
    /// The HDL-kernel semantics the paper's complaint is about: every
    /// clocked process is evaluated on every edge, whether its enable is
    /// asserted or not. `black_box` keeps the idle evaluations from being
    /// optimized away.
    fn evaluate_all_processes(&mut self) {
        black_box(self.scrambler.eval_idle());
        black_box(self.encoder.eval_idle());
        black_box(self.ram.eval_idle());
        black_box(self.mapper.eval_idle());
        // The IFFT datapath: one butterfly/load per edge while busy.
        if let Some(stepper) = self.stepper.as_mut() {
            stepper.step();
        }
    }
}

impl Clocked for TxMachine {
    fn rising_edge(&mut self) -> bool {
        self.evaluate_all_processes();
        match self.phase {
            Phase::Preamble => {
                self.out.push(self.preamble_rom[self.sub]);
                self.sub += 1;
                if self.sub == self.preamble_rom.len() {
                    self.sub = 0;
                    self.phase = Phase::Input;
                }
                true
            }
            Phase::Input => {
                if let Some(bit) = self.coded_fifo.pop_front() {
                    // One RAM write per cycle.
                    let full = self.ram.write(bit);
                    self.page_fill += 1;
                    if full {
                        self.page_fill = 0;
                        self.phase = Phase::Read;
                        self.sub = 0;
                        self.read_bits.clear();
                    }
                } else if self.in_pos < self.in_bits.len() {
                    // Scramble + encode one bit (pipelined in hardware).
                    // The six trellis-termination tail bits bypass the
                    // scrambler, matching the behavioral chain (scramble
                    // first, then terminate).
                    let tail = self.in_pos >= self.in_bits.len() - 6;
                    let bit = self.in_bits[self.in_pos];
                    let scrambled = if tail { bit } else { self.scrambler.step(bit) };
                    self.in_pos += 1;
                    let (a, b) = self.encoder.step(scrambled);
                    if let Some(kept) = self.puncture.step(a) {
                        self.coded_fifo.push_back(kept);
                    }
                    if let Some(kept) = self.puncture.step(b) {
                        self.coded_fifo.push_back(kept);
                    }
                } else if self.page_fill > 0 {
                    // Zero-pad the final page.
                    self.coded_fifo.push_back(0);
                } else {
                    self.phase = Phase::Done;
                    return false;
                }
                true
            }
            Phase::Read => {
                self.read_bits.push(self.ram.read());
                self.sub += 1;
                if self.sub == self.n_cbps {
                    self.sub = 0;
                    self.phase = Phase::Map;
                    for cell in self.grid.iter_mut() {
                        *cell = FxComplex::zero(self.format);
                    }
                }
                true
            }
            Phase::Map => {
                let n_data = self.data_carriers.len();
                if self.sub < n_data {
                    let k = self.data_carriers[self.sub];
                    let group =
                        &self.read_bits[self.sub * self.n_bpsc..(self.sub + 1) * self.n_bpsc];
                    let bin = if k >= 0 {
                        k as usize
                    } else {
                        (64 + k) as usize
                    };
                    self.grid[bin] = self.mapper.step(group);
                    self.sub += 1;
                } else {
                    // Pilot insertion: one cycle per pilot cell.
                    let pilot_idx = self.sub - n_data;
                    let cells = self.pilots.cells(self.symbol_index);
                    let (k, v) = cells[pilot_idx];
                    let bin = if k >= 0 {
                        k as usize
                    } else {
                        (64 + k) as usize
                    };
                    self.grid[bin] = FxComplex::from_f64(v.re, v.im, self.format);
                    self.sub += 1;
                    if pilot_idx + 1 == cells.len() {
                        self.sub = 0;
                        self.phase = Phase::Ifft;
                        // Hand the grid to the stepping IFFT datapath:
                        // one load/butterfly per subsequent clock edge.
                        self.stepper = Some(IfftStepper::new(self.ifft.clone(), self.grid.clone()));
                    }
                }
                true
            }
            Phase::Ifft => {
                // The stepper advanced in evaluate_all_processes; the FSM
                // just watches for completion.
                if self.stepper.as_ref().is_some_and(IfftStepper::is_done) {
                    self.body = self.stepper.take().expect("checked above").into_result();
                    self.phase = Phase::Output;
                    self.sub = 0;
                }
                true
            }
            Phase::Output => {
                // 16 CP samples (body tail) then the 64-sample body.
                let idx = if self.sub < 16 {
                    48 + self.sub
                } else {
                    self.sub - 16
                };
                let (re, im) = self.body[idx].to_f64();
                self.out.push(Complex64::new(re, im).scale(self.out_scale));
                self.sub += 1;
                if self.sub == 80 {
                    self.sub = 0;
                    self.symbol_index += 1;
                    if self.input_exhausted() && self.page_fill == 0 {
                        self.phase = Phase::Done;
                        return false;
                    }
                    self.phase = Phase::Input;
                }
                true
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofdm_core::MotherModel;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 13 + 5) % 4 < 2) as u8).collect()
    }

    #[test]
    fn produces_frame_with_preamble_and_symbols() {
        let tx = Tx80211aRtl::new(WlanRate::Mbps12);
        let frame = tx.transmit(&payload(96));
        // Preamble 320 + k×80 data samples.
        assert!(frame.samples.len() > 320);
        assert_eq!((frame.samples.len() - 320) % 80, 0);
        assert!(frame.cycles > frame.samples.len() as u64);
    }

    #[test]
    fn matches_behavioral_model_closely() {
        // Same payload through behavioral 802.11a and the RTL: waveforms
        // agree to fixed-point accuracy.
        let rate = WlanRate::Mbps12;
        let sent = payload(96);
        let mut beh = MotherModel::new(ieee80211a::params(rate)).unwrap();
        let frame_b = beh.transmit(&sent).unwrap();
        let tx = Tx80211aRtl::new(rate).with_format(FxFormat::new(20, 16));
        let frame_r = tx.transmit(&sent);
        assert_eq!(frame_b.samples().len(), frame_r.samples.len());
        let mut max_err = 0.0f64;
        for (b, r) in frame_b.samples().iter().zip(&frame_r.samples) {
            max_err = max_err.max((*b - *r).abs());
        }
        assert!(max_err < 5e-3, "max deviation {max_err}");
    }

    #[test]
    fn cycle_count_scales_with_payload() {
        let tx = Tx80211aRtl::new(WlanRate::Mbps12);
        let short = tx.transmit(&payload(96));
        let long = tx.transmit(&payload(960));
        assert!(
            long.cycles > 5 * short.cycles / 2,
            "{} vs {}",
            long.cycles,
            short.cycles
        );
    }

    #[test]
    fn rtl_is_much_more_expensive_than_sample_count() {
        // The E3 premise: RT-level simulation spends many cycles per
        // output sample.
        let tx = Tx80211aRtl::new(WlanRate::Mbps54);
        let frame = tx.transmit(&payload(1000));
        let cycles_per_sample = frame.cycles as f64 / frame.samples.len() as f64;
        assert!(cycles_per_sample > 3.0, "cycles/sample {cycles_per_sample}");
    }

    #[test]
    fn higher_rates_fit_more_bits_per_symbol() {
        let sent = payload(288);
        let bpsk = Tx80211aRtl::new(WlanRate::Mbps6).transmit(&sent);
        let qam64 = Tx80211aRtl::new(WlanRate::Mbps54).transmit(&sent);
        assert!(bpsk.samples.len() > qam64.samples.len());
    }

    #[test]
    fn accessors() {
        let tx = Tx80211aRtl::new(WlanRate::Mbps24).with_format(FxFormat::new(12, 9));
        assert_eq!(tx.rate(), WlanRate::Mbps24);
        assert_eq!(tx.format().width, 12);
    }

    #[test]
    fn traced_transmit_matches_untraced() {
        let tx = Tx80211aRtl::new(WlanRate::Mbps12);
        let bits = payload(96);
        let plain = tx.transmit(&bits);
        let (traced, trace) = tx.transmit_traced(&bits);
        assert_eq!(plain.samples, traced.samples);
        assert_eq!(plain.cycles, traced.cycles);
        // The trace recorded the FSM walking through its phases in order.
        let phases = trace.changes("phase").expect("phase traced");
        assert_eq!(phases[0], (0, 0)); // Preamble at cycle 0
        let sequence: Vec<i64> = phases.iter().map(|&(_, v)| v).collect();
        assert!(
            sequence.windows(2).all(|w| w[0] != w[1]),
            "only changes stored"
        );
        assert!(sequence.contains(&4), "IFFT phase visited");
        // Output count is monotone.
        let outs = trace.changes("out_samples").expect("outputs traced");
        assert!(outs.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(outs.last().unwrap().1 as usize, traced.samples.len() - 1);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_payload_panics() {
        let _ = Tx80211aRtl::new(WlanRate::Mbps6).transmit(&[]);
    }
}

//! Q-format fixed-point arithmetic with saturation and round-to-nearest.
//!
//! A value is an integer `raw` interpreted as `raw / 2^frac` within a
//! signed `width`-bit word — the representation a synthesized datapath
//! would carry. Width ≤ 32; intermediates use i64 so products never
//! overflow before the final quantize-and-saturate step.

use std::fmt;

/// A fixed-point format: total signed word width and fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FxFormat {
    /// Total word width in bits (2..=32), including the sign.
    pub width: u32,
    /// Fractional bits (< width).
    pub frac: u32,
}

impl FxFormat {
    /// Creates a format.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ width ≤ 32` and `frac < width`.
    pub fn new(width: u32, frac: u32) -> Self {
        assert!((2..=32).contains(&width), "width must be in 2..=32");
        assert!(frac < width, "frac must be below width");
        FxFormat { width, frac }
    }

    /// Largest representable raw value.
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.width - 1)) - 1
    }

    /// Smallest representable raw value.
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.width - 1))
    }

    /// The quantization step (value of one LSB).
    pub fn lsb(self) -> f64 {
        1.0 / (1i64 << self.frac) as f64
    }

    /// Saturates a raw value into range.
    pub fn saturate(self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }
}

/// A fixed-point number: raw integer plus its format.
///
/// # Example
///
/// ```
/// use ofdm_rtl::{Fx, FxFormat};
///
/// let q15 = FxFormat::new(16, 15);
/// let a = Fx::from_f64(0.5, q15);
/// let b = Fx::from_f64(-0.25, q15);
/// let p = a.mul(b);
/// assert!((p.to_f64() + 0.125).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fx {
    raw: i64,
    format: FxFormat,
}

// `add`/`sub`/`mul`/`neg` deliberately mirror datapath operator names while
// carrying saturation and format assertions that std's operator traits
// (which cannot document per-call panics as clearly) would hide.
#[allow(clippy::should_implement_trait)]
impl Fx {
    /// Zero in the given format.
    pub fn zero(format: FxFormat) -> Self {
        Fx { raw: 0, format }
    }

    /// Quantizes a float (round-to-nearest, saturating).
    pub fn from_f64(v: f64, format: FxFormat) -> Self {
        let scaled = (v * (1i64 << format.frac) as f64).round() as i64;
        Fx {
            raw: format.saturate(scaled),
            format,
        }
    }

    /// Builds from a raw integer (saturating).
    pub fn from_raw(raw: i64, format: FxFormat) -> Self {
        Fx {
            raw: format.saturate(raw),
            format,
        }
    }

    /// The raw integer.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format.
    pub fn format(self) -> FxFormat {
        self.format
    }

    /// Converts back to floating point.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / (1i64 << self.format.frac) as f64
    }

    /// Saturating addition.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ (a hardware datapath would not mix
    /// word formats without an explicit resize).
    pub fn add(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in add");
        Fx {
            raw: self.format.saturate(self.raw + rhs.raw),
            format: self.format,
        }
    }

    /// Saturating subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn sub(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in sub");
        Fx {
            raw: self.format.saturate(self.raw - rhs.raw),
            format: self.format,
        }
    }

    /// Saturating multiplication with round-to-nearest back into the
    /// left operand's format.
    pub fn mul(self, rhs: Fx) -> Fx {
        let prod = self.raw * rhs.raw; // ≤ 62 bits + sign: safe in i64
        let shift = rhs.format.frac;
        let rounded = if shift == 0 {
            prod
        } else {
            (prod + (1i64 << (shift - 1))) >> shift
        };
        Fx {
            raw: self.format.saturate(rounded),
            format: self.format,
        }
    }

    /// Arithmetic right shift (divide by 2^n) with round-to-nearest — the
    /// per-stage scaling of the fixed-point IFFT.
    pub fn shr_round(self, n: u32) -> Fx {
        if n == 0 {
            return self;
        }
        let rounded = (self.raw + (1i64 << (n - 1))) >> n;
        Fx {
            raw: self.format.saturate(rounded),
            format: self.format,
        }
    }

    /// Negation (saturating: `-min_raw` saturates to `max_raw`).
    pub fn neg(self) -> Fx {
        Fx {
            raw: self.format.saturate(-self.raw),
            format: self.format,
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6}q{}.{}",
            self.to_f64(),
            self.format.width,
            self.format.frac
        )
    }
}

/// A fixed-point complex pair sharing one format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FxComplex {
    /// Real part.
    pub re: Fx,
    /// Imaginary part.
    pub im: Fx,
}

// Same naming rationale as `Fx`: datapath-named saturating operations.
#[allow(clippy::should_implement_trait)]
impl FxComplex {
    /// Zero in the format.
    pub fn zero(format: FxFormat) -> Self {
        FxComplex {
            re: Fx::zero(format),
            im: Fx::zero(format),
        }
    }

    /// Quantizes a float pair.
    pub fn from_f64(re: f64, im: f64, format: FxFormat) -> Self {
        FxComplex {
            re: Fx::from_f64(re, format),
            im: Fx::from_f64(im, format),
        }
    }

    /// Complex addition.
    pub fn add(self, rhs: FxComplex) -> FxComplex {
        FxComplex {
            re: self.re.add(rhs.re),
            im: self.im.add(rhs.im),
        }
    }

    /// Complex subtraction.
    pub fn sub(self, rhs: FxComplex) -> FxComplex {
        FxComplex {
            re: self.re.sub(rhs.re),
            im: self.im.sub(rhs.im),
        }
    }

    /// Complex multiplication (4 multiplies + 2 adds, like the datapath).
    pub fn mul(self, rhs: FxComplex) -> FxComplex {
        let rr = self.re.mul(rhs.re);
        let ii = self.im.mul(rhs.im);
        let ri = self.re.mul(rhs.im);
        let ir = self.im.mul(rhs.re);
        FxComplex {
            re: rr.sub(ii),
            im: ri.add(ir),
        }
    }

    /// Halves both components with rounding (butterfly stage scaling).
    pub fn half(self) -> FxComplex {
        FxComplex {
            re: self.re.shr_round(1),
            im: self.im.shr_round(1),
        }
    }

    /// Converts to floating point `(re, im)`.
    pub fn to_f64(self) -> (f64, f64) {
        (self.re.to_f64(), self.im.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q15: FxFormat = FxFormat {
        width: 16,
        frac: 15,
    };

    #[test]
    fn format_limits() {
        let f = FxFormat::new(16, 15);
        assert_eq!(f.max_raw(), 32767);
        assert_eq!(f.min_raw(), -32768);
        assert!((f.lsb() - 1.0 / 32768.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn bad_width_panics() {
        let _ = FxFormat::new(40, 8);
    }

    #[test]
    #[should_panic(expected = "frac")]
    fn bad_frac_panics() {
        let _ = FxFormat::new(16, 16);
    }

    #[test]
    fn quantization_roundtrip() {
        for v in [0.0, 0.5, -0.5, 0.999, -1.0, 0.123456] {
            let q = Fx::from_f64(v, Q15);
            assert!((q.to_f64() - v).abs() <= Q15.lsb() / 2.0 + 1e-12, "v={v}");
        }
    }

    #[test]
    fn saturation_on_construction() {
        let q = Fx::from_f64(5.0, Q15);
        assert_eq!(q.raw(), 32767);
        let q = Fx::from_f64(-5.0, Q15);
        assert_eq!(q.raw(), -32768);
        assert_eq!(Fx::from_raw(99999, Q15).raw(), 32767);
    }

    #[test]
    fn add_sub_saturate() {
        let a = Fx::from_f64(0.9, Q15);
        let sum = a.add(a);
        assert_eq!(sum.raw(), Q15.max_raw());
        let b = Fx::from_f64(-0.9, Q15);
        assert_eq!(b.add(b).raw(), Q15.min_raw());
        assert!((a.sub(a).to_f64()).abs() < 1e-12);
    }

    #[test]
    fn multiplication_accuracy() {
        let a = Fx::from_f64(0.5, Q15);
        let b = Fx::from_f64(0.5, Q15);
        assert!((a.mul(b).to_f64() - 0.25).abs() < 2.0 * Q15.lsb());
        // Sign handling.
        let c = Fx::from_f64(-0.7, Q15);
        assert!((a.mul(c).to_f64() + 0.35).abs() < 2.0 * Q15.lsb());
    }

    #[test]
    fn shr_rounds_to_nearest() {
        let v = Fx::from_raw(3, Q15);
        assert_eq!(v.shr_round(1).raw(), 2); // 1.5 → 2
        let v = Fx::from_raw(-3, Q15);
        assert_eq!(v.shr_round(1).raw(), -1); // −1.5 → −1 (round half up)
        assert_eq!(Fx::from_raw(8, Q15).shr_round(2).raw(), 2);
        assert_eq!(Fx::from_raw(5, Q15).shr_round(0).raw(), 5);
    }

    #[test]
    fn negation_saturates_min() {
        let v = Fx::from_raw(Q15.min_raw(), Q15);
        assert_eq!(v.neg().raw(), Q15.max_raw());
        assert_eq!(Fx::from_f64(0.25, Q15).neg().to_f64(), -0.25);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn mixed_format_add_panics() {
        let a = Fx::from_f64(0.1, FxFormat::new(16, 15));
        let b = Fx::from_f64(0.1, FxFormat::new(12, 11));
        let _ = a.add(b);
    }

    #[test]
    fn complex_multiplication_matches_float() {
        let f = FxFormat::new(18, 16);
        let a = FxComplex::from_f64(0.3, -0.4, f);
        let b = FxComplex::from_f64(-0.5, 0.2, f);
        let p = a.mul(b);
        // (0.3−0.4i)(−0.5+0.2i) = −0.15+0.06i + 0.2i·... compute: re = −0.15+0.08 = −0.07; im = 0.06+0.2 = 0.26.
        let (re, im) = p.to_f64();
        assert!((re + 0.07).abs() < 1e-3, "re {re}");
        assert!((im - 0.26).abs() < 1e-3, "im {im}");
    }

    #[test]
    fn complex_half() {
        let f = FxFormat::new(16, 12);
        let a = FxComplex::from_f64(0.5, -0.5, f);
        let (re, im) = a.half().to_f64();
        assert!((re - 0.25).abs() < 1e-3);
        assert!((im + 0.25).abs() < 1e-3);
    }

    #[test]
    fn display_nonempty() {
        let v = Fx::from_f64(0.5, Q15);
        assert!(v.to_string().contains("q16.15"));
    }

    #[test]
    fn wider_formats_quantize_finer() {
        let coarse = Fx::from_f64(0.123456789, FxFormat::new(8, 6));
        let fine = Fx::from_f64(0.123456789, FxFormat::new(24, 22));
        let err_coarse = (coarse.to_f64() - 0.123456789).abs();
        let err_fine = (fine.to_f64() - 0.123456789).abs();
        assert!(err_fine < err_coarse / 100.0);
    }
}
